//! Coarse-to-fine resolution scheduling for the optimization loop.
//!
//! The early ILT iterations move the contour by many pixels per step;
//! nothing about that motion needs the full grid resolution or the full
//! kernel rank. A [`ResolutionSchedule`] makes
//! [`LevelSetIlt::optimize`](crate::LevelSetIlt::optimize) run those
//! iterations on a downsampled grid with a truncated kernel set, then
//! transfer `ψ` to the full grid (spectral upsample + signed-distance
//! reinitialization, see `lsopc_levelset::upsample_levelset`) and finish
//! with a short full-resolution refinement. See DESIGN.md §14 for the
//! stage state machine and the accuracy contract.

use lsopc_optics::OpticsConfig;
use serde::{Deserialize, Serialize};

/// Parameters of a two-stage coarse-to-fine run.
///
/// Construct with [`ResolutionSchedule::new`] (explicit parameters) or
/// [`ResolutionSchedule::auto`] (derived from the simulator geometry).
/// Attach to an optimizer with
/// [`LevelSetIltBuilder::schedule`](crate::LevelSetIltBuilder::schedule);
/// without one the optimizer runs the historical flat loop bit-for-bit.
///
/// # Example
///
/// ```
/// use lsopc_core::{LevelSetIlt, ResolutionSchedule};
///
/// let opt = LevelSetIlt::builder()
///     .schedule(Some(ResolutionSchedule::new(256, 12, 20, 10)))
///     .build();
/// assert_eq!(opt.schedule().expect("set").coarse_px(), 256);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolutionSchedule {
    coarse_px: usize,
    coarse_kernels: usize,
    coarse_iterations: usize,
    fine_iterations: usize,
}

impl ResolutionSchedule {
    /// Creates a schedule: `coarse_iterations` on a `coarse_px²` grid
    /// with (at most) `coarse_kernels` kernels, then `fine_iterations`
    /// at full resolution.
    ///
    /// # Panics
    ///
    /// Panics if `coarse_px` is not a power of two (FFT requirement) or
    /// any count is zero.
    pub fn new(
        coarse_px: usize,
        coarse_kernels: usize,
        coarse_iterations: usize,
        fine_iterations: usize,
    ) -> Self {
        assert!(
            coarse_px > 0 && coarse_px.is_power_of_two(),
            "coarse grid {coarse_px} must be a power of two"
        );
        assert!(coarse_kernels > 0, "coarse kernel count must be positive");
        assert!(
            coarse_iterations > 0 && fine_iterations > 0,
            "stage iteration counts must be positive"
        );
        Self {
            coarse_px,
            coarse_kernels,
            coarse_iterations,
            fine_iterations,
        }
    }

    /// Derives a schedule from the simulator geometry: a quarter-size
    /// coarse grid (clamped so the grid still holds the optical band),
    /// half the kernel rank (floored at 8 — below that the truncated
    /// aerial image diverges enough that the coarse optimum misleads the
    /// fine stage), and a roughly 2:1 coarse:fine split of
    /// `max_iterations`. Returns `None` when no coarser grid can hold
    /// the band — then a flat run is the only option.
    ///
    /// `optics` must carry the run's field period (e.g.
    /// [`LithoSimulator::optics`](lsopc_litho::LithoSimulator::optics)),
    /// since the minimum grid follows from the band in cycles per field.
    pub fn auto(grid_px: usize, optics: &OpticsConfig, max_iterations: usize) -> Option<Self> {
        let min_px = (2 * optics.support_size() - 1).next_power_of_two();
        let coarse_px = (grid_px / 4).max(min_px);
        if coarse_px >= grid_px || max_iterations < 2 {
            return None;
        }
        let kernels = optics.kernel_count();
        let coarse_kernels = kernels.div_ceil(2).max(8).min(kernels);
        let fine_iterations = max_iterations.div_ceil(3).max(1);
        let coarse_iterations = (max_iterations - fine_iterations).max(1);
        Some(Self::new(
            coarse_px,
            coarse_kernels,
            coarse_iterations,
            fine_iterations,
        ))
    }

    /// Coarse-stage grid size in pixels.
    pub fn coarse_px(&self) -> usize {
        self.coarse_px
    }

    /// Kernel-rank cap for the coarse stage (clamped to the optimizer's
    /// simulator rank at run time).
    pub fn coarse_kernels(&self) -> usize {
        self.coarse_kernels
    }

    /// Iteration budget of the coarse stage.
    pub fn coarse_iterations(&self) -> usize {
        self.coarse_iterations
    }

    /// Iteration budget of the full-resolution refinement stage.
    pub fn fine_iterations(&self) -> usize {
        self.fine_iterations
    }

    /// The integer downsampling factor for a `grid_px` run, or `None`
    /// when the schedule is degenerate for that grid (coarse not
    /// strictly smaller) and the optimizer should fall back to a flat
    /// run.
    pub(crate) fn downsample_factor(&self, grid_px: usize) -> Option<usize> {
        if self.coarse_px < grid_px && grid_px.is_multiple_of(self.coarse_px) {
            Some(grid_px / self.coarse_px)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_roundtrips_accessors() {
        let s = ResolutionSchedule::new(256, 12, 20, 10);
        assert_eq!(s.coarse_px(), 256);
        assert_eq!(s.coarse_kernels(), 12);
        assert_eq!(s.coarse_iterations(), 20);
        assert_eq!(s.fine_iterations(), 10);
        assert_eq!(s.downsample_factor(1024), Some(4));
    }

    #[test]
    fn degenerate_grids_fall_back() {
        let s = ResolutionSchedule::new(256, 12, 20, 10);
        assert_eq!(s.downsample_factor(256), None, "coarse == fine");
        assert_eq!(s.downsample_factor(128), None, "coarse > fine");
    }

    #[test]
    fn auto_respects_the_optical_band() {
        // 2048 nm field: support 59 → minimum coarse grid 128.
        let optics = OpticsConfig::iccad2013().with_field_nm(2048.0);
        let s = ResolutionSchedule::auto(1024, &optics, 30).expect("schedulable");
        assert_eq!(s.coarse_px(), 256, "quarter grid above the band floor");
        assert!(s.coarse_px() >= (2 * optics.support_size() - 1).next_power_of_two());
        assert_eq!(s.coarse_iterations() + s.fine_iterations(), 30);
        assert!(s.coarse_iterations() > s.fine_iterations());
        assert_eq!(
            s.coarse_kernels(),
            12,
            "half the ICCAD 2013 rank of 24, above the floor of 8"
        );

        let low_rank = OpticsConfig::iccad2013().with_kernel_count(4);
        let s = ResolutionSchedule::auto(1024, &low_rank, 30).expect("schedulable");
        assert_eq!(s.coarse_kernels(), 4, "never raised above the full rank");

        let tight = ResolutionSchedule::auto(256, &optics, 30).expect("schedulable");
        assert_eq!(tight.coarse_px(), 128, "clamped to the band floor");
        assert!(
            ResolutionSchedule::auto(128, &optics, 30).is_none(),
            "no coarser grid holds the band"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_coarse_grid_panics() {
        let _ = ResolutionSchedule::new(200, 12, 20, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stage_budget_panics() {
        let _ = ResolutionSchedule::new(256, 12, 0, 10);
    }
}
