//! The optimization loop (paper Algorithm 1).

use crate::cg::prp_beta;
use crate::guard::{panic_message, BackoffOutcome, Health, HealthGuard};
use crate::resume::{
    self, Checkpoint, CheckpointError, CheckpointSpec, CoarseCarry, LoopSnapshot, StageTag,
};
use crate::{
    Evolution, GuardEventKind, IterationRecord, LevelSetIlt, ResolutionSchedule, RunControl,
    SolverDiagnostics, StopReason,
};
use lsopc_grid::{max_abs, Grid, Scalar};
use lsopc_levelset::{
    cfl_time_step, curvature, evolve, godunov_gradient, gradient_magnitude, mask_from_levelset,
    reinitialize, signed_distance, upsample_levelset, NarrowBand,
};
use lsopc_litho::{cost_and_gradient, cost_only, CostReport, LithoSimulator};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Error returned by [`LevelSetIlt::optimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    /// Target grid does not match the simulator grid.
    TargetDimsMismatch {
        /// Target grid dimensions.
        target: (usize, usize),
        /// Simulator grid dimension.
        sim: usize,
    },
    /// Target contains no pattern (nothing to optimize).
    EmptyTarget,
    /// A warm-start level set does not match the simulator grid.
    InitDimsMismatch {
        /// Warm-start grid dimensions.
        init: (usize, usize),
        /// Simulator grid dimension.
        sim: usize,
    },
    /// A [`ResolutionSchedule`] coarse stage could not build its
    /// simulator.
    CoarseStage {
        /// The underlying build error, rendered.
        message: String,
    },
    /// The health guard exhausted its backoffs under
    /// [`RecoveryPolicy::Strict`](crate::RecoveryPolicy::Strict).
    RecoveryFailed {
        /// Iteration at which the guard gave up.
        iteration: usize,
        /// Backoffs performed before giving up.
        backoffs: usize,
    },
    /// A [`RunControl::with_resume`] checkpoint could not be used
    /// (missing, corrupt, or written by an incompatible run). See
    /// [`CheckpointError`] for the categories.
    Checkpoint {
        /// The underlying [`CheckpointError`], rendered.
        message: String,
    },
}

impl From<CheckpointError> for OptimizeError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint {
            message: e.to_string(),
        }
    }
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TargetDimsMismatch { target, sim } => write!(
                f,
                "target grid {}x{} does not match simulator grid {sim}x{sim}",
                target.0, target.1
            ),
            Self::EmptyTarget => write!(f, "target contains no pattern"),
            Self::InitDimsMismatch { init, sim } => write!(
                f,
                "warm-start level set {}x{} does not match simulator grid {sim}x{sim}",
                init.0, init.1
            ),
            Self::CoarseStage { message } => {
                write!(f, "coarse-stage simulator: {message}")
            }
            Self::RecoveryFailed {
                iteration,
                backoffs,
            } => write!(
                f,
                "solver health guard gave up at iteration {iteration} after {backoffs} backoffs"
            ),
            Self::Checkpoint { message } => f.write_str(message),
        }
    }
}

impl Error for OptimizeError {}

/// The outcome of a level-set ILT run.
///
/// Generic over the field scalar `T` (default `f64`): the mask, level
/// set and snapshots carry the precision the run was performed at, while
/// the per-iteration history is always recorded in f64 — costs and step
/// sizes are optimizer master state regardless of field precision.
#[derive(Clone, Debug)]
pub struct IltResult<T: Scalar = f64> {
    /// The optimized binary mask `M*`.
    pub mask: Grid<T>,
    /// The final level-set function `ψ`.
    pub levelset: Grid<T>,
    /// Per-iteration records (always collected; they are cheap). On a
    /// scheduled run the coarse stage comes first, with fine-stage
    /// iterations renumbered to continue the count.
    pub history: Vec<IterationRecord>,
    /// Number of iterations actually run (both stages on a scheduled
    /// run).
    pub iterations: usize,
    /// How many of [`IltResult::iterations`] ran on the coarse grid of a
    /// [`ResolutionSchedule`] (0 on a flat run — every iteration paid
    /// full-resolution cost).
    pub coarse_iterations: usize,
    /// True when the run stopped on the `max|v| ≤ ε` criterion.
    pub converged: bool,
    /// End-to-end wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Mask snapshots `(iteration, mask)` when snapshotting was enabled
    /// (for reproducing the paper's Fig. 2).
    pub snapshots: Vec<(usize, Grid<T>)>,
    /// What the solver health guard observed (empty with
    /// [`RecoveryPolicy::Off`](crate::RecoveryPolicy::Off) or on a
    /// healthy run).
    pub diagnostics: SolverDiagnostics,
    /// Why the run was stopped early by its [`RunControl`] (`None` for
    /// a run that completed or converged normally). A stopped result
    /// still carries the best-so-far mask — a graceful stop is not an
    /// error.
    pub stopped: Option<StopReason>,
}

impl<T: Scalar> IltResult<T> {
    /// Total cost at the last iteration.
    pub fn final_cost(&self) -> f64 {
        self.history.last().map_or(f64::NAN, |r| r.cost_total)
    }

    /// The result with mask, level set and snapshots widened to f64.
    ///
    /// Scoring and reporting run at f64 regardless of the optimization
    /// precision; this is the seam where an f32 run re-enters the f64
    /// world. A no-op (exact) when `T = f64`.
    pub fn to_f64(&self) -> IltResult<f64> {
        IltResult {
            mask: self.mask.map(|&v| v.to_f64()),
            levelset: self.levelset.map(|&v| v.to_f64()),
            history: self.history.clone(),
            iterations: self.iterations,
            coarse_iterations: self.coarse_iterations,
            converged: self.converged,
            runtime_s: self.runtime_s,
            snapshots: self
                .snapshots
                .iter()
                .map(|(i, m)| (*i, m.map(|&v| v.to_f64())))
                .collect(),
            diagnostics: self.diagnostics.clone(),
            stopped: self.stopped,
        }
    }
}

/// Mirrors one just-pushed [`IterationRecord`] to the trace layer (the
/// per-iteration telemetry event). No-op when tracing is disabled or the
/// history is empty.
fn emit_iter(record: Option<&IterationRecord>) {
    if !lsopc_trace::enabled() {
        return;
    }
    if let Some(rec) = record {
        lsopc_trace::iter(&lsopc_trace::IterRecord {
            iteration: rec.iteration,
            cost_total: rec.cost_total,
            cost_nominal: rec.cost_nominal,
            cost_pvb: rec.cost_pvb,
            lambda_scale: rec.lambda_scale,
            beta: rec.cg_beta,
            time_step: rec.time_step,
            max_velocity: rec.max_velocity,
            rolled_back: rec.rolled_back,
        });
    }
}

/// Per-run bookkeeping shared by every stage of one controlled run.
struct RunMeta<'a> {
    control: &'a RunControl,
    /// Configuration fingerprint written into (and checked against)
    /// checkpoint files; zero when the control never persists.
    config_hash: u64,
}

/// Per-stage context handed to [`LevelSetIlt::run`]: which stage this
/// is (for checkpoint tagging), how many iterations earlier stages
/// already consumed (for the global budget), and optionally the loop
/// state to restore.
struct StageCtx<'a> {
    meta: &'a RunMeta<'a>,
    stage: StageTag,
    /// Iterations completed by earlier stages of this run.
    iter_offset: usize,
    /// Loop state to restore instead of initializing from scratch.
    resume: Option<LoopSnapshot>,
    /// Completed-coarse context to embed in fine-stage checkpoints.
    carry: Option<CoarseCarry>,
}

impl<'a> StageCtx<'a> {
    /// The context of an unscheduled (or fallback-flat) run.
    fn flat(meta: &'a RunMeta<'a>, resume: Option<LoopSnapshot>) -> Self {
        Self {
            meta,
            stage: StageTag::Flat,
            iter_offset: 0,
            resume,
            carry: None,
        }
    }
}

/// Unwraps a loaded checkpoint for a flat (unscheduled or
/// fallback-flat) run, which can only resume a `Flat`-stage file. The
/// config hash normally guarantees this; a mismatch here means the
/// file was tampered with.
fn flat_snapshot(loaded: Option<Checkpoint>) -> Result<Option<LoopSnapshot>, OptimizeError> {
    match loaded {
        None => Ok(None),
        Some(ck) if ck.stage == StageTag::Flat => Ok(Some(ck.snapshot)),
        Some(_) => Err(CheckpointError::Malformed(
            "checkpoint stage does not match an unscheduled run".into(),
        )
        .into()),
    }
}

/// Captures the loop state into a checkpoint file, atomically. A write
/// failure is a warning, not an error: losing a periodic checkpoint
/// must not kill a healthy optimization.
#[allow(clippy::too_many_arguments)]
fn save_loop_checkpoint<T: Scalar>(
    spec: &CheckpointSpec,
    config_hash: u64,
    stage: StageTag,
    carry: Option<&CoarseCarry>,
    next_iteration: usize,
    psi: &Grid<T>,
    prev_gradient_velocity: Option<&Grid<T>>,
    prev_velocity: Option<&Grid<T>>,
    best: Option<&(f64, Grid<T>, Grid<T>)>,
    guard: Option<&HealthGuard>,
    guard_checkpoint: Option<&Grid<T>>,
    history: &[IterationRecord],
    snapshots: &[(usize, Grid<T>)],
) {
    // Spans the whole capture (state widening + serialization + the
    // atomic write), so the trace reports the full per-write cost.
    let _span = lsopc_trace::span!("checkpoint.write");
    let widen = |g: &Grid<T>| g.map(|&v| v.to_f64());
    let snapshot = LoopSnapshot {
        next_iteration,
        psi: widen(psi),
        prev_gradient_velocity: prev_gradient_velocity.map(widen),
        prev_velocity: prev_velocity.map(widen),
        // The best mask is always `mask_from_levelset` of the best ψ,
        // so only the (cost, ψ) pair needs to be stored.
        best: best.map(|(cost, _mask, psi)| (*cost, widen(psi))),
        guard: guard.map(HealthGuard::snapshot),
        guard_checkpoint: guard_checkpoint.map(widen),
        history: history.to_vec(),
        snapshots: snapshots.iter().map(|(i, m)| (*i, widen(m))).collect(),
    };
    let ck = Checkpoint {
        config_hash,
        stage,
        snapshot,
        carry: carry.cloned(),
    };
    match resume::write_checkpoint(&spec.path, &ck) {
        Ok(()) => lsopc_trace::count("checkpoint.write", 1),
        Err(e) => lsopc_trace::warn(
            "resume",
            &format!("checkpoint write to {} failed: {e}", spec.path.display()),
        ),
    }
}

impl LevelSetIlt {
    /// Runs Algorithm 1: optimizes a mask for `target` on the given
    /// simulator.
    ///
    /// The initial mask is the target itself (binarized at 0.5), per the
    /// paper's initialization. The returned mask is the binary mask of the
    /// best-scoring iterate (by total cost), which for a well-behaved run
    /// is the final one.
    ///
    /// Generic over the field scalar `T` (default `f64`): fields (mask,
    /// `ψ`, gradients, velocities) are held and evolved at `T`, while
    /// every piece of optimizer control state — costs, CFL time step,
    /// PRP coefficient, guard thresholds — stays f64, the master-state
    /// pattern. At `T = f64` this is bit-identical to the historical
    /// f64-only loop (see `tests/golden_f64.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError`] if the target does not match the
    /// simulator grid or contains no pattern.
    pub fn optimize<T: Scalar>(
        &self,
        sim: &LithoSimulator<T>,
        target: &Grid<T>,
    ) -> Result<IltResult<T>, OptimizeError> {
        self.optimize_controlled(sim, target, &RunControl::default())
    }

    /// [`LevelSetIlt::optimize`] under a [`RunControl`]: cooperative
    /// cancellation, wall-clock deadline, global iteration budget,
    /// periodic checkpointing and checkpoint resume.
    ///
    /// The control is polled at every iteration boundary (including the
    /// first iteration of each schedule stage, which makes the
    /// coarse→fine transition a cancellation point). A requested stop
    /// is graceful: the best-so-far mask is returned with
    /// [`IltResult::stopped`] set and — when checkpointing is on — a
    /// final checkpoint on disk. With a default control this is exactly
    /// [`LevelSetIlt::optimize`], bit for bit.
    ///
    /// Resuming restores the loop state the checkpoint captured and
    /// replays the remaining iterations through the identical code
    /// path, so at the f64 default a resumed run is bit-identical
    /// (mask, ψ, history — `f64::to_bits`) to the uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError`] for invalid targets, and
    /// [`OptimizeError::Checkpoint`] when a resume file is missing,
    /// corrupt, or from an incompatible run (different optimizer
    /// parameters, simulator geometry or target).
    pub fn optimize_controlled<T: Scalar>(
        &self,
        sim: &LithoSimulator<T>,
        target: &Grid<T>,
        control: &RunControl,
    ) -> Result<IltResult<T>, OptimizeError> {
        let target = self.validate_target(sim, target)?;
        let config_hash = if control.persists() {
            resume::config_hash(self, sim, &target, None)
        } else {
            0
        };
        let loaded = self.load_resume(control, config_hash)?;
        let meta = RunMeta {
            control,
            config_hash,
        };
        match self.schedule {
            Some(schedule) => self.optimize_scheduled(sim, &target, &schedule, &meta, loaded),
            None => self.run(
                sim,
                &target,
                None,
                self.max_iterations,
                StageCtx::flat(&meta, flat_snapshot(loaded)?),
            ),
        }
    }

    /// Runs Algorithm 1 from a caller-supplied initial level set instead
    /// of the target's signed distance — the warm-start entry point: a
    /// cached ψ from a previously solved (translation-equivalent) tile
    /// drops the early contour-forming iterations and goes straight to
    /// refinement.
    ///
    /// `init` is used as ψ₀ verbatim (callers wanting a true signed
    /// distance should reinitialize first). Any configured
    /// [`ResolutionSchedule`] is ignored: a warm start replaces the
    /// coarse stage.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError`] if `init` or the target does not match
    /// the simulator grid, or the target contains no pattern.
    pub fn optimize_from<T: Scalar>(
        &self,
        sim: &LithoSimulator<T>,
        target: &Grid<T>,
        init: Grid<T>,
    ) -> Result<IltResult<T>, OptimizeError> {
        self.optimize_from_controlled(sim, target, init, &RunControl::default())
    }

    /// [`LevelSetIlt::optimize_from`] under a [`RunControl`] — see
    /// [`LevelSetIlt::optimize_controlled`] for the control semantics.
    /// The warm-start ψ₀ is folded into the checkpoint's config hash,
    /// so a resume with a different initial level set is rejected as
    /// [`OptimizeError::Checkpoint`].
    ///
    /// # Errors
    ///
    /// As [`LevelSetIlt::optimize_from`], plus
    /// [`OptimizeError::Checkpoint`] for unusable resume files.
    pub fn optimize_from_controlled<T: Scalar>(
        &self,
        sim: &LithoSimulator<T>,
        target: &Grid<T>,
        init: Grid<T>,
        control: &RunControl,
    ) -> Result<IltResult<T>, OptimizeError> {
        let n = sim.grid_px();
        if init.dims() != (n, n) {
            return Err(OptimizeError::InitDimsMismatch {
                init: init.dims(),
                sim: n,
            });
        }
        let target = self.validate_target(sim, target)?;
        let config_hash = if control.persists() {
            resume::config_hash(self, sim, &target, Some(&init))
        } else {
            0
        };
        let loaded = self.load_resume(control, config_hash)?;
        let meta = RunMeta {
            control,
            config_hash,
        };
        self.run(
            sim,
            &target,
            Some(init),
            self.max_iterations,
            StageCtx::flat(&meta, flat_snapshot(loaded)?),
        )
    }

    /// Loads and validates the control's resume checkpoint, if any.
    fn load_resume(
        &self,
        control: &RunControl,
        config_hash: u64,
    ) -> Result<Option<Checkpoint>, OptimizeError> {
        let Some(path) = control.resume.as_ref() else {
            return Ok(None);
        };
        let ck = {
            let _span = lsopc_trace::span!("checkpoint.load");
            resume::load_checkpoint(path)?
        };
        if ck.config_hash != config_hash {
            return Err(CheckpointError::ConfigMismatch.into());
        }
        lsopc_trace::count("checkpoint.load", 1);
        Ok(Some(ck))
    }

    /// Validates and binarizes the target (shared by every entry point).
    fn validate_target<T: Scalar>(
        &self,
        sim: &LithoSimulator<T>,
        target: &Grid<T>,
    ) -> Result<Grid<T>, OptimizeError> {
        let n = sim.grid_px();
        if target.dims() != (n, n) {
            return Err(OptimizeError::TargetDimsMismatch {
                target: target.dims(),
                sim: n,
            });
        }
        let target = target.binarize(0.5);
        if target.sum() == T::ZERO {
            return Err(OptimizeError::EmptyTarget);
        }
        Ok(target)
    }

    /// The two-stage coarse-to-fine path (DESIGN.md §14): solve on the
    /// schedule's reduced grid/kernel rank, transfer ψ up, refine at
    /// full resolution. Falls back to a flat run when the schedule is
    /// degenerate for this grid or the pattern vanishes when
    /// downsampled.
    ///
    /// Resume dispatches on the checkpoint's stage tag: a
    /// `Coarse`-stage file re-enters (and finishes) the coarse loop
    /// before transferring up as usual; a `Fine`-stage file skips the
    /// coarse stage entirely and reproduces the stage merge from the
    /// embedded [`CoarseCarry`]. A run stopped mid-coarse still reports
    /// a full-resolution best-so-far mask (ψ upsampled).
    fn optimize_scheduled<T: Scalar>(
        &self,
        sim: &LithoSimulator<T>,
        target: &Grid<T>,
        schedule: &ResolutionSchedule,
        meta: &RunMeta<'_>,
        loaded: Option<Checkpoint>,
    ) -> Result<IltResult<T>, OptimizeError> {
        let start = Instant::now();
        let Some(factor) = schedule.downsample_factor(sim.grid_px()) else {
            return self.run(
                sim,
                target,
                None,
                self.max_iterations,
                StageCtx::flat(meta, flat_snapshot(loaded)?),
            );
        };
        // Block-average then re-threshold: a feature must cover half a
        // coarse cell to survive. An all-empty coarse target cannot be
        // optimized, so fall back to the flat loop.
        let coarse_target = target.map(|&v| v.to_f64()).downsample(factor).binarize(0.5);
        if coarse_target.sum() == 0.0 {
            return self.run(
                sim,
                target,
                None,
                self.max_iterations,
                StageCtx::flat(meta, flat_snapshot(loaded)?),
            );
        }
        let coarse_target = coarse_target.map(|&v| T::from_f64(v));

        // Split a loaded checkpoint into the stage it re-enters. The
        // config hash has already pinned the schedule, so a Flat-stage
        // file reaching this point can only be a tampered file.
        let (coarse_resume, fine_resume) = match loaded {
            None => (None, None),
            Some(ck) => match ck.stage {
                StageTag::Coarse => (Some(ck.snapshot), None),
                StageTag::Fine => {
                    let carry = ck.carry.ok_or_else(|| {
                        CheckpointError::Malformed("fine-stage checkpoint lost its carry".into())
                    })?;
                    (None, Some((ck.snapshot, carry)))
                }
                StageTag::Flat => {
                    return Err(CheckpointError::Malformed(
                        "flat-stage checkpoint for a scheduled run".into(),
                    )
                    .into())
                }
            },
        };

        // Coarse stage — skipped entirely when resuming inside fine.
        let (psi0, carry, fine_snapshot) = match fine_resume {
            Some((snapshot, carry)) => (None, carry, Some(snapshot)),
            None => {
                // The coarse simulator shares the optics (same field
                // period, so identical physics in cycles-per-field) with
                // a truncated kernel rank; its plans and spectra go
                // through the same process-wide caches as any other grid
                // size.
                let coarse_kernels = schedule.coarse_kernels().min(sim.optics().kernel_count());
                let coarse_optics = sim.optics().clone().with_kernel_count(coarse_kernels);
                let coarse_pixel_nm = sim.field_nm() / schedule.coarse_px() as f64;
                let coarse_sim = LithoSimulator::<T>::from_optics(
                    &coarse_optics,
                    schedule.coarse_px(),
                    coarse_pixel_nm,
                )
                .map_err(|e| OptimizeError::CoarseStage {
                    message: e.to_string(),
                })?
                .with_accelerated_backend(1);

                let coarse = {
                    let _span = lsopc_trace::span!("optimize.stage.coarse");
                    self.run(
                        &coarse_sim,
                        &coarse_target,
                        None,
                        schedule.coarse_iterations(),
                        StageCtx {
                            meta,
                            stage: StageTag::Coarse,
                            iter_offset: 0,
                            resume: coarse_resume,
                            carry: None,
                        },
                    )?
                };
                // A stop during the coarse stage: report the best-so-far
                // contour at full resolution (the caller's grid), with
                // the checkpoint still tagged Coarse for resume.
                if coarse.stopped.is_some() {
                    let levelset = upsample_levelset(&coarse.levelset, factor);
                    let mask = mask_from_levelset(&levelset);
                    return Ok(IltResult {
                        mask,
                        levelset,
                        history: coarse.history,
                        iterations: coarse.iterations,
                        coarse_iterations: coarse.iterations,
                        converged: false,
                        runtime_s: start.elapsed().as_secs_f64(),
                        snapshots: Vec::new(),
                        diagnostics: coarse.diagnostics,
                        stopped: coarse.stopped,
                    });
                }
                // Carry the contour (not the far field) across:
                // band-limited interpolation of ψ, then exact
                // redistancing on the fine grid.
                let psi0 = upsample_levelset(&coarse.levelset, factor);
                let carry = CoarseCarry {
                    iterations: coarse.iterations,
                    history: coarse.history,
                    diagnostics: coarse.diagnostics,
                };
                (Some(psi0), carry, None)
            }
        };

        let fine = {
            let _span = lsopc_trace::span!("optimize.stage.fine");
            self.run(
                sim,
                target,
                psi0,
                schedule.fine_iterations(),
                StageCtx {
                    meta,
                    stage: StageTag::Fine,
                    iter_offset: carry.iterations,
                    resume: fine_snapshot,
                    carry: Some(carry.clone()),
                },
            )?
        };

        // Merge the stage records into one timeline: fine iterations and
        // snapshots renumbered past the coarse stage, elapsed times made
        // monotone. Guard diagnostics accumulate across stages (event
        // iteration numbers stay stage-local).
        let coarse_iterations = carry.iterations;
        let mut history = carry.history;
        let coarse_elapsed = history.last().map_or(0.0, |r| r.elapsed_s);
        for mut rec in fine.history {
            rec.iteration += coarse_iterations;
            rec.elapsed_s += coarse_elapsed;
            history.push(rec);
        }
        let mut diagnostics = carry.diagnostics;
        diagnostics.events.extend(fine.diagnostics.events);
        diagnostics.backoffs += fine.diagnostics.backoffs;
        diagnostics.recoveries += fine.diagnostics.recoveries;
        diagnostics.gave_up = fine.diagnostics.gave_up;
        diagnostics.final_lambda_scale = fine.diagnostics.final_lambda_scale;
        let snapshots = fine
            .snapshots
            .into_iter()
            .map(|(i, m)| (i + coarse_iterations, m))
            .collect();
        Ok(IltResult {
            mask: fine.mask,
            levelset: fine.levelset,
            history,
            iterations: coarse_iterations + fine.iterations,
            coarse_iterations,
            converged: fine.converged,
            runtime_s: start.elapsed().as_secs_f64(),
            snapshots,
            diagnostics,
            stopped: fine.stopped,
        })
    }

    /// The Algorithm 1 loop itself. `target` is already validated and
    /// binarized; ψ₀ is `init` when given (warm start / fine stage) and
    /// the target's signed distance otherwise. With `init = None`,
    /// `max_iterations = self.max_iterations` and a default control
    /// this is the historical `optimize` body, bit for bit.
    ///
    /// The stage context supplies the run-lifecycle hooks: the control
    /// is polled at every iteration boundary (before any work of that
    /// iteration), state is checkpointed every `checkpoint-every`
    /// iterations and at a graceful stop, and `ctx.resume` replaces the
    /// initialization with the captured loop state so the remaining
    /// iterations replay the identical floating-point stream.
    fn run<T: Scalar>(
        &self,
        sim: &LithoSimulator<T>,
        target: &Grid<T>,
        init: Option<Grid<T>>,
        max_iterations: usize,
        mut ctx: StageCtx<'_>,
    ) -> Result<IltResult<T>, OptimizeError> {
        let n = sim.grid_px();
        let start = Instant::now();
        // Line 1: ψ₀ from the initial mask M₀ = R* — unless a warm
        // start or a fine stage supplied one.
        let mut psi = match init {
            Some(psi0) => psi0,
            None => signed_distance(target),
        };
        let mut history = Vec::with_capacity(max_iterations);
        let mut snapshots = Vec::new();
        let mut prev_gradient_velocity: Option<Grid<T>> = None;
        let mut prev_velocity: Option<Grid<T>> = None;
        let mut best: Option<(f64, Grid<T>, Grid<T>)> = None;
        let mut converged = false;
        let mut iterations = 0;
        let mut stopped: Option<StopReason> = None;
        // The health guard (None with RecoveryPolicy::Off — the loop then
        // follows the historical code path exactly) and its checkpoint:
        // the last pre-evolve ψ that passed every per-iteration check.
        let mut guard = HealthGuard::from_policy(&self.recovery);
        let mut guard_checkpoint: Option<Grid<T>> = None;
        let mut start_iter = 0;

        // Resume: overwrite the freshly initialized state with the
        // checkpointed one. Everything is stored in f64; the narrowing
        // map is the exact inverse of the widening one at T = f64.
        if let Some(snap) = ctx.resume.take() {
            if snap.psi.dims() != (n, n) {
                return Err(CheckpointError::Malformed(format!(
                    "checkpoint ψ is {}×{}, stage grid is {n}×{n}",
                    snap.psi.dims().0,
                    snap.psi.dims().1
                ))
                .into());
            }
            let narrow = |g: &Grid<f64>| g.map(|&v| T::from_f64(v));
            start_iter = snap.next_iteration;
            iterations = snap.next_iteration;
            psi = narrow(&snap.psi);
            prev_gradient_velocity = snap.prev_gradient_velocity.as_ref().map(narrow);
            prev_velocity = snap.prev_velocity.as_ref().map(narrow);
            // The loop only ever stores best = (cost, mask_from_levelset(ψ), ψ),
            // so recomputing the mask from the stored ψ is exact.
            best = snap.best.as_ref().map(|(cost, bpsi)| {
                let bpsi = narrow(bpsi);
                (*cost, mask_from_levelset(&bpsi), bpsi)
            });
            match (guard.as_mut(), snap.guard) {
                (Some(g), Some(gs)) => g.restore(gs),
                (None, None) => {}
                _ => {
                    return Err(CheckpointError::Malformed(
                        "checkpoint guard state does not match the recovery policy".into(),
                    )
                    .into())
                }
            }
            guard_checkpoint = snap.guard_checkpoint.as_ref().map(narrow);
            history = snap.history;
            snapshots = snap
                .snapshots
                .iter()
                .map(|(i, m)| (*i, narrow(m)))
                .collect();
        }

        'iterate: for i in start_iter..max_iterations {
            let _iter_span = lsopc_trace::span!("optimize.iter");
            // Cancellation point: poll the run control before this
            // iteration does any work (this also covers CG restarts and
            // the first iteration after a stage transfer). The stop is
            // graceful — the state at this boundary is checkpointed and
            // the best-so-far mask is still reported below.
            if let Some(reason) = ctx.meta.control.stop_requested(ctx.iter_offset + i) {
                stopped = Some(reason);
                lsopc_trace::count("run.cancel", 1);
                lsopc_trace::count(reason.counter_name(), 1);
                if let Some(spec) = ctx.meta.control.checkpoint.as_ref() {
                    save_loop_checkpoint(
                        spec,
                        ctx.meta.config_hash,
                        ctx.stage,
                        ctx.carry.as_ref(),
                        i,
                        &psi,
                        prev_gradient_velocity.as_ref(),
                        prev_velocity.as_ref(),
                        best.as_ref(),
                        guard.as_ref(),
                        guard_checkpoint.as_ref(),
                        &history,
                        &snapshots,
                    );
                }
                break 'iterate;
            }
            iterations = i + 1;
            // Line 7 (Eq. (6)): current binary mask from ψ.
            let mask = mask_from_levelset(&psi);
            if self.snapshot_interval > 0 && i % self.snapshot_interval == 0 {
                snapshots.push((i, mask.clone()));
            }
            // Effective λ_t: halved per guard backoff. With the guard on
            // but never triggered the scale is exactly 1.0, so the
            // multiply reproduces `self.lambda_t` bit-for-bit.
            let lambda_scale = guard.as_ref().map_or(1.0, |g| g.lambda_scale());
            let effective_lambda_t = match guard.as_ref() {
                Some(g) => self.lambda_t * g.lambda_scale(),
                None => self.lambda_t,
            };

            // Lines 8–9: simulate, evaluate, back-propagate (Eq. (11)/(14)).
            // With the guard on, a worker-pool panic re-raised by
            // lsopc-parallel is contained here and handled as trouble
            // instead of aborting the process.
            let evaluated = match guard {
                Some(_) => catch_unwind(AssertUnwindSafe(|| {
                    cost_and_gradient(sim, &mask, target, self.w_pvb)
                })),
                None => Ok(cost_and_gradient(sim, &mask, target, self.w_pvb)),
            };
            let (report, gradient, mut verdict) = match evaluated {
                Ok((report, gradient)) => (report, gradient, Health::Healthy),
                Err(payload) => (
                    CostReport {
                        nominal: f64::NAN,
                        pvb: f64::NAN,
                        w_pvb: self.w_pvb,
                    },
                    Grid::new(n, n, T::from_f64(f64::NAN)),
                    Health::Corrupt(GuardEventKind::WorkerPanic {
                        message: panic_message(payload),
                    }),
                ),
            };
            if matches!(verdict, Health::Healthy) {
                if let Some(g) = guard.as_mut() {
                    verdict = g.inspect_evaluation(i, report.total(), &gradient);
                }
            }

            // Trouble at the evaluation stage: record the rejected
            // iteration, roll ψ back to the checkpoint and retry with a
            // halved λ_t and a CG restart — or give up.
            if let Health::Corrupt(kind) = &verdict {
                if let Some(g) = guard.as_mut() {
                    let outcome = g.trouble(i, kind.clone());
                    history.push(IterationRecord {
                        iteration: i,
                        cost_nominal: report.nominal,
                        cost_pvb: report.pvb,
                        cost_total: report.total(),
                        max_velocity: f64::NAN,
                        time_step: f64::NAN,
                        cg_beta: 0.0,
                        elapsed_s: start.elapsed().as_secs_f64(),
                        rolled_back: true,
                        backoffs: g.diagnostics.backoffs,
                        lambda_scale: g.lambda_scale(),
                    });
                    emit_iter(history.last());
                    match outcome {
                        BackoffOutcome::Retry => {
                            // With no checkpoint yet, ψ is still the
                            // untouched initial signed distance.
                            if let Some(cp) = &guard_checkpoint {
                                psi = cp.clone();
                            }
                            prev_gradient_velocity = None;
                            prev_velocity = None;
                            continue 'iterate;
                        }
                        BackoffOutcome::GiveUp => {
                            if self.recovery.is_strict() {
                                return Err(OptimizeError::RecoveryFailed {
                                    iteration: i,
                                    backoffs: g.diagnostics.backoffs,
                                });
                            }
                            if let Some(cp) = &guard_checkpoint {
                                psi = cp.clone();
                            }
                            break 'iterate;
                        }
                    }
                }
            }

            // Best-tracking: only evaluations the guard accepted (or all
            // of them with the guard off) can become the returned mask.
            if best.as_ref().is_none_or(|(c, _, _)| report.total() < *c) {
                best = Some((report.total(), mask.clone(), psi.clone()));
            }

            // Eq. (10) up to sign: with the Eq. (5)/(6) convention
            // (ψ ≤ 0 inside, M = H(−ψ)) we have ∂L/∂ψ = −G·δ(ψ), so the
            // descent update is ψ̇ = +G·|∇ψ| — the sign printed in
            // Eq. (10) corresponds to the opposite inside/outside
            // convention (see DESIGN.md §7).
            let gradmag = if self.upwind {
                godunov_gradient(&psi, &gradient)
            } else {
                gradient_magnitude(&psi)
            };
            // The gradient-velocity g_i = G·|∇ψ| drives both the descent
            // direction and the PRP coefficient.
            let gradient_velocity = gradient.zip_map(&gradmag, |&g, &m| g * m);
            let mut velocity = gradient_velocity.clone();

            // Eq. (15)–(16): combine with the previous velocity according
            // to the configured evolution scheme.
            let mut beta = 0.0;
            match self.evolution {
                Evolution::Plain => {}
                Evolution::PrpConjugateGradient => {
                    if let (Some(g_prev), Some(v_prev)) =
                        (prev_gradient_velocity.as_ref(), prev_velocity.as_ref())
                    {
                        beta = prp_beta(&gradient_velocity, g_prev);
                        if beta > 0.0 {
                            let beta_t = T::from_f64(beta);
                            for (v, &pv) in
                                velocity.as_mut_slice().iter_mut().zip(v_prev.as_slice())
                            {
                                *v += beta_t * pv;
                            }
                        }
                    }
                }
                Evolution::HeavyBall { beta: momentum } => {
                    if let Some(v_prev) = prev_velocity.as_ref() {
                        beta = momentum;
                        let momentum_t = T::from_f64(momentum);
                        for (v, &pv) in velocity.as_mut_slice().iter_mut().zip(v_prev.as_slice()) {
                            *v += momentum_t * pv;
                        }
                    }
                }
            }

            // Optional contour smoothing (extension beyond the paper).
            if self.curvature_weight > 0.0 {
                let kappa = curvature(&psi);
                let central = gradient_magnitude(&psi);
                let weight = T::from_f64(self.curvature_weight);
                for ((v, &k), &m) in velocity
                    .as_mut_slice()
                    .iter_mut()
                    .zip(kappa.as_slice())
                    .zip(central.as_slice())
                {
                    *v += weight * k * m;
                }
            }

            // Optional narrow-band restriction (extension beyond the
            // paper): freeze the far field so only near-contour cells
            // evolve.
            if self.narrow_band > 0.0 {
                NarrowBand::extract(&psi, self.narrow_band).mask_velocity(&mut velocity);
            }

            // A combined velocity with NaN/∞ cells (e.g. momentum carried
            // from a corrupt history) must never evolve ψ.
            if let Some(g) = guard.as_mut() {
                if let Some(kind) = g.inspect_velocity(&velocity) {
                    let outcome = g.trouble(i, kind);
                    history.push(IterationRecord {
                        iteration: i,
                        cost_nominal: report.nominal,
                        cost_pvb: report.pvb,
                        cost_total: report.total(),
                        max_velocity: f64::NAN,
                        time_step: f64::NAN,
                        cg_beta: beta,
                        elapsed_s: start.elapsed().as_secs_f64(),
                        rolled_back: true,
                        backoffs: g.diagnostics.backoffs,
                        lambda_scale: g.lambda_scale(),
                    });
                    emit_iter(history.last());
                    match outcome {
                        BackoffOutcome::Retry => {
                            if let Some(cp) = &guard_checkpoint {
                                psi = cp.clone();
                            }
                            prev_gradient_velocity = None;
                            prev_velocity = None;
                            continue 'iterate;
                        }
                        BackoffOutcome::GiveUp => {
                            if self.recovery.is_strict() {
                                return Err(OptimizeError::RecoveryFailed {
                                    iteration: i,
                                    backoffs: g.diagnostics.backoffs,
                                });
                            }
                            if let Some(cp) = &guard_checkpoint {
                                psi = cp.clone();
                            }
                            break 'iterate;
                        }
                    }
                }
            }

            let vmax = max_abs(&velocity).to_f64();
            let dt = cfl_time_step(&velocity, effective_lambda_t);
            history.push(IterationRecord {
                iteration: i,
                cost_nominal: report.nominal,
                cost_pvb: report.pvb,
                cost_total: report.total(),
                max_velocity: vmax,
                time_step: dt,
                cg_beta: beta,
                elapsed_s: start.elapsed().as_secs_f64(),
                rolled_back: false,
                backoffs: guard.as_ref().map_or(0, |g| g.diagnostics.backoffs),
                lambda_scale,
            });
            emit_iter(history.last());

            // Stall: healthy values but no cost progress for the window.
            // Backing off cannot unstall a frozen run, so stop early.
            if let Health::Stalled(kind) = verdict {
                if let Some(g) = guard.as_mut() {
                    g.note_event(i, kind);
                }
                break 'iterate;
            }

            // Algorithm 1 stop condition: max|v| ≤ ε.
            if vmax <= self.velocity_tolerance {
                converged = true;
                break;
            }

            // Commit the guard checkpoint: this pre-evolve ψ passed
            // every check and its cost is on record; a corrupted evolve
            // rolls back to exactly here.
            if guard.is_some() {
                guard_checkpoint = Some(psi.clone());
            }

            // Lines 5–6: CFL step and evolution, optionally guarded by a
            // backtracking line search on the total cost.
            if self.line_search {
                let _ls_span = lsopc_trace::span!("optimize.line_search");
                let mut trial_dt = dt;
                let mut accepted = false;
                for _ in 0..3 {
                    let mut trial_psi = psi.clone();
                    evolve(&mut trial_psi, &velocity, trial_dt);
                    let trial_mask = mask_from_levelset(&trial_psi);
                    let trial_cost = match guard.as_mut() {
                        Some(g) => {
                            // A contained worker panic rejects this trial
                            // step; the post-evolve scan still protects
                            // the fallback step below.
                            match catch_unwind(AssertUnwindSafe(|| {
                                cost_only(sim, &trial_mask, target, self.w_pvb).total()
                            })) {
                                Ok(cost) => cost,
                                Err(payload) => {
                                    g.note_event(
                                        i,
                                        GuardEventKind::WorkerPanic {
                                            message: panic_message(payload),
                                        },
                                    );
                                    f64::INFINITY
                                }
                            }
                        }
                        None => cost_only(sim, &trial_mask, target, self.w_pvb).total(),
                    };
                    if trial_cost <= report.total() {
                        psi = trial_psi;
                        accepted = true;
                        break;
                    }
                    trial_dt /= 2.0;
                }
                if !accepted {
                    evolve(&mut psi, &velocity, trial_dt);
                }
            } else {
                evolve(&mut psi, &velocity, dt);
            }

            // Scan ψ BEFORE reinitialization: reinit thresholds at zero
            // and would launder NaN cells into a finite (wrong) signed
            // distance.
            if let Some(g) = guard.as_mut() {
                if let Some(kind) = g.inspect_levelset(&psi) {
                    let outcome = g.trouble(i, kind);
                    if let Some(rec) = history.last_mut() {
                        rec.rolled_back = true;
                        rec.backoffs = g.diagnostics.backoffs;
                    }
                    match outcome {
                        BackoffOutcome::Retry => {
                            if let Some(cp) = &guard_checkpoint {
                                psi = cp.clone();
                            }
                            prev_gradient_velocity = None;
                            prev_velocity = None;
                            continue 'iterate;
                        }
                        BackoffOutcome::GiveUp => {
                            if self.recovery.is_strict() {
                                return Err(OptimizeError::RecoveryFailed {
                                    iteration: i,
                                    backoffs: g.diagnostics.backoffs,
                                });
                            }
                            if let Some(cp) = &guard_checkpoint {
                                psi = cp.clone();
                            }
                            break 'iterate;
                        }
                    }
                }
            }

            // Keep ψ a signed distance function periodically.
            if self.reinit_interval > 0 && (i + 1) % self.reinit_interval == 0 {
                psi = reinitialize(&psi);
            }

            prev_gradient_velocity = Some(gradient_velocity);
            prev_velocity = Some(velocity);

            // Periodic checkpoint, after every mutation of this
            // iteration is in place. Keyed on the absolute iteration
            // index so a resumed run checkpoints at the same boundaries
            // as the original. Rollback retries skip this via their
            // `continue` — the next completed iteration persists.
            if let Some(spec) = ctx.meta.control.checkpoint.as_ref() {
                if (i + 1) % spec.every == 0 {
                    save_loop_checkpoint(
                        spec,
                        ctx.meta.config_hash,
                        ctx.stage,
                        ctx.carry.as_ref(),
                        i + 1,
                        &psi,
                        prev_gradient_velocity.as_ref(),
                        prev_velocity.as_ref(),
                        best.as_ref(),
                        guard.as_ref(),
                        guard_checkpoint.as_ref(),
                        &history,
                        &snapshots,
                    );
                }
            }
        }

        // Evaluate the final iterate too, then return the best mask seen.
        // With the guard on, a panic or non-finite cost here must not
        // pick the (corrupt) final iterate.
        let final_mask = mask_from_levelset(&psi);
        let final_evaluated = match guard {
            Some(_) => catch_unwind(AssertUnwindSafe(|| {
                cost_and_gradient(sim, &final_mask, target, self.w_pvb)
            })),
            None => Ok(cost_and_gradient(sim, &final_mask, target, self.w_pvb)),
        };
        let final_total = match final_evaluated {
            Ok((final_report, _)) => {
                if !final_report.total().is_finite() {
                    if let Some(g) = guard.as_mut() {
                        g.note_event(iterations, GuardEventKind::NonFiniteCost);
                    }
                }
                final_report.total()
            }
            Err(payload) => {
                if let Some(g) = guard.as_mut() {
                    g.note_event(
                        iterations,
                        GuardEventKind::WorkerPanic {
                            message: panic_message(payload),
                        },
                    );
                }
                f64::NAN
            }
        };
        let (mask, levelset) = if guard.is_some() && !final_total.is_finite() {
            match best {
                Some((_, best_mask, best_psi)) => (best_mask, best_psi),
                // No healthy iterate at all: under the guard ψ is still
                // finite (every evolve was scanned or rolled back), so
                // its mask is a safe last resort.
                None => (final_mask, psi),
            }
        } else {
            match best {
                Some((best_cost, best_mask, best_psi)) if best_cost < final_total => {
                    (best_mask, best_psi)
                }
                _ => (final_mask, psi),
            }
        };
        if self.snapshot_interval > 0 {
            snapshots.push((iterations, mask.clone()));
        }

        Ok(IltResult {
            mask,
            levelset,
            history,
            iterations,
            coarse_iterations: 0,
            converged,
            runtime_s: start.elapsed().as_secs_f64(),
            snapshots,
            diagnostics: guard.map_or_else(SolverDiagnostics::default, |g| g.diagnostics),
            stopped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
            .expect("valid configuration")
    }

    fn wire_target() -> Grid<f64> {
        Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn optimization_reduces_cost() {
        let sim = sim();
        let target = wire_target();
        let result = LevelSetIlt::builder()
            .max_iterations(12)
            .build()
            .optimize(&sim, &target)
            .expect("optimization runs");
        let first = result.history.first().expect("history");
        let last = result.history.last().expect("history");
        assert!(
            last.cost_total < first.cost_total * 0.9,
            "no real improvement: {} -> {}",
            first.cost_total,
            last.cost_total
        );
        assert_eq!(result.history.len(), result.iterations);
    }

    #[test]
    fn returned_mask_is_binary() {
        let sim = sim();
        let result = LevelSetIlt::builder()
            .max_iterations(5)
            .build()
            .optimize(&sim, &wire_target())
            .expect("optimization runs");
        assert!(result.mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(result.mask.sum() > 0.0);
    }

    #[test]
    fn returned_mask_is_best_iterate() {
        let sim = sim();
        let target = wire_target();
        let result = LevelSetIlt::builder()
            .max_iterations(10)
            .build()
            .optimize(&sim, &target)
            .expect("optimization runs");
        let (best_report, _) = cost_and_gradient(&sim, &result.mask, &target, 1.0);
        for rec in &result.history {
            assert!(
                best_report.total() <= rec.cost_total + 1e-9,
                "iteration {} had lower cost",
                rec.iteration
            );
        }
    }

    #[test]
    fn snapshots_are_recorded() {
        let sim = sim();
        let result = LevelSetIlt::builder()
            .max_iterations(6)
            .snapshot_interval(2)
            .build()
            .optimize(&sim, &wire_target())
            .expect("optimization runs");
        // Snapshots at 0, 2, 4 plus the final mask.
        let iters: Vec<usize> = result.snapshots.iter().map(|(i, _)| *i).collect();
        assert_eq!(iters, vec![0, 2, 4, 6]);
    }

    #[test]
    fn loose_tolerance_converges_early() {
        let sim = sim();
        let result = LevelSetIlt::builder()
            .max_iterations(30)
            .velocity_tolerance(1e9)
            .build()
            .optimize(&sim, &wire_target())
            .expect("optimization runs");
        assert!(result.converged);
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn determinism() {
        let sim = sim();
        let opt = LevelSetIlt::builder().max_iterations(6).build();
        let a = opt.optimize(&sim, &wire_target()).expect("run a");
        let b = opt.optimize(&sim, &wire_target()).expect("run b");
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.cost_total, y.cost_total);
        }
    }

    #[test]
    fn plain_gradient_mode_also_improves() {
        let sim = sim();
        let result = LevelSetIlt::builder()
            .max_iterations(12)
            .conjugate_gradient(false)
            .build()
            .optimize(&sim, &wire_target())
            .expect("optimization runs");
        let first = result.history.first().expect("history");
        let last = result.history.last().expect("history");
        assert!(last.cost_total < first.cost_total);
        assert!(result.history.iter().all(|r| r.cg_beta == 0.0));
    }

    #[test]
    fn cg_runs_use_nonzero_beta_eventually() {
        let sim = sim();
        let result = LevelSetIlt::builder()
            .max_iterations(12)
            .build()
            .optimize(&sim, &wire_target())
            .expect("optimization runs");
        assert!(result.history.iter().any(|r| r.cg_beta > 0.0));
    }

    #[test]
    fn rejects_mismatched_target() {
        let sim = sim();
        let target = Grid::new(32, 32, 1.0);
        let err = LevelSetIlt::default()
            .optimize(&sim, &target)
            .expect_err("should fail");
        assert!(matches!(err, OptimizeError::TargetDimsMismatch { .. }));
        assert!(err.to_string().contains("32x32"));
    }

    #[test]
    fn rejects_empty_target() {
        let sim = sim();
        let target = Grid::new(64, 64, 0.0);
        let err = LevelSetIlt::default()
            .optimize(&sim, &target)
            .expect_err("should fail");
        assert_eq!(err, OptimizeError::EmptyTarget);
    }
}

#[cfg(test)]
mod evolution_tests {
    use super::*;
    use crate::Evolution;
    use lsopc_optics::OpticsConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
            .expect("valid configuration")
    }

    fn target() -> Grid<f64> {
        Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn heavy_ball_improves_cost() {
        let result = LevelSetIlt::builder()
            .max_iterations(10)
            .evolution(Evolution::HeavyBall { beta: 0.5 })
            .build()
            .optimize(&sim(), &target())
            .expect("optimization runs");
        let first = result.history.first().expect("history");
        let last = result.history.last().expect("history");
        assert!(last.cost_total < first.cost_total);
        // From iteration 1 onward the recorded beta is the momentum.
        assert!(result.history[1..].iter().all(|r| r.cg_beta == 0.5));
    }

    #[test]
    fn narrow_band_run_matches_full_run_closely() {
        let full = LevelSetIlt::builder()
            .max_iterations(8)
            .build()
            .optimize(&sim(), &target())
            .expect("optimization runs");
        let banded = LevelSetIlt::builder()
            .max_iterations(8)
            .narrow_band(6.0)
            .build()
            .optimize(&sim(), &target())
            .expect("optimization runs");
        // Contour motion only depends on near-field ψ, so both runs reach
        // comparable cost.
        assert!(banded.final_cost() < full.final_cost() * 1.5 + 1.0);
        let first = banded.history.first().expect("history");
        assert!(banded.final_cost() < first.cost_total);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn invalid_heavy_ball_coefficient_panics() {
        let _ = LevelSetIlt::builder().evolution(Evolution::HeavyBall { beta: 1.0 });
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use crate::{GuardConfig, RecoveryPolicy};
    use lsopc_optics::OpticsConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
            .expect("valid configuration")
    }

    fn wire_target() -> Grid<f64> {
        Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    fn assert_bit_identical(off: &IltResult, on: &IltResult) {
        assert_eq!(off.iterations, on.iterations);
        assert_eq!(off.converged, on.converged);
        for (name, a, b) in [
            ("mask", &off.mask, &on.mask),
            ("levelset", &off.levelset, &on.levelset),
        ] {
            assert_eq!(a.dims(), b.dims(), "{name} dims");
            for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{name} cell {i}: {x} vs {y} differ bitwise"
                );
            }
        }
        assert_eq!(off.history.len(), on.history.len());
        for (x, y) in off.history.iter().zip(&on.history) {
            assert_eq!(x.iteration, y.iteration);
            // Every field except the wall-clock timestamp.
            for (name, a, b) in [
                ("cost_nominal", x.cost_nominal, y.cost_nominal),
                ("cost_pvb", x.cost_pvb, y.cost_pvb),
                ("cost_total", x.cost_total, y.cost_total),
                ("max_velocity", x.max_velocity, y.max_velocity),
                ("time_step", x.time_step, y.time_step),
                ("cg_beta", x.cg_beta, y.cg_beta),
                ("lambda_scale", x.lambda_scale, y.lambda_scale),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "iter {} {name}: {a} vs {b} differ bitwise",
                    x.iteration
                );
            }
            assert_eq!(x.rolled_back, y.rolled_back);
            assert_eq!(x.backoffs, y.backoffs);
        }
    }

    #[test]
    fn fault_free_run_is_bit_identical_with_guard_enabled() {
        let sim = sim();
        let target = wire_target();
        let off = LevelSetIlt::builder()
            .max_iterations(8)
            .build()
            .optimize(&sim, &target)
            .expect("guard off runs");
        let on = LevelSetIlt::builder()
            .max_iterations(8)
            .recovery(RecoveryPolicy::On(GuardConfig::default()))
            .build()
            .optimize(&sim, &target)
            .expect("guard on runs");
        assert_bit_identical(&off, &on);
        assert!(!on.diagnostics.has_events());
        assert_eq!(on.diagnostics.backoffs, 0);
        assert_eq!(on.diagnostics.final_lambda_scale, 1.0);
    }

    #[test]
    fn fault_free_line_search_run_is_bit_identical_with_guard_enabled() {
        let sim = sim();
        let target = wire_target();
        let build = |policy: RecoveryPolicy| {
            LevelSetIlt::builder()
                .max_iterations(6)
                .lambda_t(4.0)
                .line_search(true)
                .recovery(policy)
                .build()
                .optimize(&sim, &target)
                .expect("runs")
        };
        let off = build(RecoveryPolicy::Off);
        let on = build(RecoveryPolicy::Strict(GuardConfig::default()));
        assert_bit_identical(&off, &on);
        assert!(!on.diagnostics.has_events());
    }

    #[test]
    fn healthy_records_carry_unit_lambda_scale() {
        let sim = sim();
        let result = LevelSetIlt::builder()
            .max_iterations(4)
            .recovery(RecoveryPolicy::On(GuardConfig::default()))
            .build()
            .optimize(&sim, &wire_target())
            .expect("runs");
        for rec in &result.history {
            assert!(!rec.rolled_back);
            assert_eq!(rec.backoffs, 0);
            assert_eq!(rec.lambda_scale, 1.0);
        }
    }
}

#[cfg(test)]
mod line_search_tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    #[test]
    fn line_search_never_does_worse_than_plain() {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
                .expect("valid configuration");
        let target = Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        // A deliberately aggressive step makes plain evolution overshoot.
        let plain = LevelSetIlt::builder()
            .max_iterations(8)
            .lambda_t(4.0)
            .build()
            .optimize(&sim, &target)
            .expect("runs");
        let guarded = LevelSetIlt::builder()
            .max_iterations(8)
            .lambda_t(4.0)
            .line_search(true)
            .build()
            .optimize(&sim, &target)
            .expect("runs");
        // Line search makes the cost trace (nearly) monotone; the
        // unguarded aggressive steps oscillate more.
        let increases = |history: &[crate::IterationRecord]| {
            history
                .windows(2)
                .filter(|w| w[1].cost_total > w[0].cost_total * (1.0 + 1e-9))
                .count()
        };
        assert!(
            increases(&guarded.history) <= increases(&plain.history),
            "guarded had {} increases, plain {}",
            increases(&guarded.history),
            increases(&plain.history)
        );
        // And the guarded run still makes progress.
        let first = guarded.history.first().expect("history").cost_total;
        assert!(guarded.final_cost() < first);
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use crate::ResolutionSchedule;
    use lsopc_optics::OpticsConfig;

    fn optics() -> OpticsConfig {
        OpticsConfig::iccad2013().with_kernel_count(4)
    }

    fn sim_256() -> LithoSimulator {
        LithoSimulator::from_optics(&optics(), 256, 4.0)
            .expect("valid configuration")
            .with_accelerated_backend(1)
    }

    fn wire_target_256() -> Grid<f64> {
        Grid::from_fn(256, 256, |x, y| {
            if (104..152).contains(&x) && (48..208).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn scheduled_run_executes_both_stages_and_improves() {
        let sim = sim_256();
        let target = wire_target_256();
        let schedule =
            ResolutionSchedule::auto(256, &optics(), 9).expect("256 px grid is schedulable");
        let result = LevelSetIlt::builder()
            .max_iterations(9)
            .schedule(Some(schedule))
            .build()
            .optimize(&sim, &target)
            .expect("scheduled run");
        assert_eq!(result.coarse_iterations, schedule.coarse_iterations());
        assert_eq!(
            result.iterations,
            result.coarse_iterations + schedule.fine_iterations()
        );
        // Merged history: stage-local records renumbered into one
        // strictly increasing sequence with no gap at the seam.
        assert_eq!(result.history.len(), result.iterations);
        for (i, rec) in result.history.iter().enumerate() {
            assert_eq!(rec.iteration, i);
        }
        // Coarse-grid costs live on a smaller grid (fewer cells), so
        // improvement is judged per stage: within the coarse records and
        // from the first full-resolution record to the end.
        let coarse_first = result.history.first().expect("history");
        let coarse_last = &result.history[result.coarse_iterations - 1];
        assert!(coarse_last.cost_total < coarse_first.cost_total);
        let fine_first = &result.history[result.coarse_iterations];
        assert!(
            result.final_cost() < fine_first.cost_total,
            "fine stage regressed: {} -> {}",
            fine_first.cost_total,
            result.final_cost()
        );
        assert!(result.mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(result.mask.sum() > 0.0);
    }

    #[test]
    fn scheduled_final_cost_is_near_the_flat_run() {
        // The schedule is a wall-clock optimization, not a quality
        // change: with matched total budgets the final cost must land in
        // the same neighbourhood as the flat solve (DESIGN.md §14 gives
        // the accuracy contract; 20% covers the discrete mask flips).
        let sim = sim_256();
        let target = wire_target_256();
        let flat = LevelSetIlt::builder()
            .max_iterations(9)
            .build()
            .optimize(&sim, &target)
            .expect("flat run");
        let schedule =
            ResolutionSchedule::auto(256, &optics(), 9).expect("256 px grid is schedulable");
        let scheduled = LevelSetIlt::builder()
            .max_iterations(9)
            .schedule(Some(schedule))
            .build()
            .optimize(&sim, &target)
            .expect("scheduled run");
        let rel = (scheduled.final_cost() - flat.final_cost()).abs() / flat.final_cost();
        assert!(
            rel < 0.20,
            "scheduled {} vs flat {} ({}% apart)",
            scheduled.final_cost(),
            flat.final_cost(),
            rel * 100.0
        );
    }

    #[test]
    fn unschedulable_grid_falls_back_to_the_flat_loop() {
        // 64 px is below the coarse floor: Option stays None and the
        // configured schedule must be ignored, not an error.
        let sim = LithoSimulator::from_optics(&optics(), 64, 4.0).expect("valid configuration");
        let target = Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        assert!(ResolutionSchedule::auto(64, &optics(), 9).is_none());
        let schedule = ResolutionSchedule::new(128, 2, 6, 3);
        let result = LevelSetIlt::builder()
            .max_iterations(5)
            .schedule(Some(schedule))
            .build()
            .optimize(&sim, &target)
            .expect("fallback run");
        assert_eq!(result.coarse_iterations, 0);
        assert_eq!(result.iterations, 5);
    }

    #[test]
    fn warm_start_rejects_mismatched_init_dims() {
        let sim = LithoSimulator::from_optics(&optics(), 64, 4.0).expect("valid configuration");
        let target = Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let err = LevelSetIlt::builder()
            .max_iterations(3)
            .build()
            .optimize_from(&sim, &target, Grid::new(32, 32, 1.0))
            .expect_err("should fail");
        assert!(matches!(err, OptimizeError::InitDimsMismatch { .. }));
        assert!(err.to_string().contains("32x32"));
    }

    #[test]
    fn warm_start_from_own_levelset_reconverges_immediately() {
        let sim = LithoSimulator::from_optics(&optics(), 64, 4.0).expect("valid configuration");
        let target = Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let opt = LevelSetIlt::builder().max_iterations(8).build();
        let cold = opt.optimize(&sim, &target).expect("cold run");
        let warm = opt
            .optimize_from(&sim, &target, cold.levelset.clone())
            .expect("warm run");
        // Restarting from the solved ψ must not undo the work.
        assert!(
            warm.final_cost() <= cold.final_cost() * 1.05,
            "warm {} much worse than cold {}",
            warm.final_cost(),
            cold.final_cost()
        );
        assert_eq!(warm.coarse_iterations, 0);
    }
}
