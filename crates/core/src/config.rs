//! Optimizer configuration and builder.

use crate::{RecoveryPolicy, ResolutionSchedule};
use serde::{Deserialize, Serialize};

/// How successive evolution velocities are combined (paper Eq. (15)).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Evolution {
    /// Pure steepest descent: `v_i = −g_i`.
    Plain,
    /// The paper's Polak–Ribière–Polyak conjugate gradient (Eq. (15)–(16)).
    PrpConjugateGradient,
    /// Heavy-ball momentum with a fixed coefficient: `v_i = −g_i + β·v_{i−1}`
    /// (an alternative "momentum-based evolution" for the ablation study).
    HeavyBall {
        /// Momentum coefficient in `[0, 1)`.
        beta: f64,
    },
}

/// The level-set ILT optimizer (paper Algorithm 1), configured through
/// [`LevelSetIlt::builder`].
///
/// # Example
///
/// ```
/// use lsopc_core::LevelSetIlt;
///
/// let opt = LevelSetIlt::builder()
///     .max_iterations(40)
///     .pvb_weight(0.8)
///     .conjugate_gradient(true)
///     .build();
/// assert_eq!(opt.max_iterations(), 40);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelSetIlt {
    pub(crate) max_iterations: usize,
    pub(crate) velocity_tolerance: f64,
    pub(crate) lambda_t: f64,
    pub(crate) w_pvb: f64,
    pub(crate) evolution: Evolution,
    pub(crate) upwind: bool,
    pub(crate) reinit_interval: usize,
    pub(crate) curvature_weight: f64,
    pub(crate) snapshot_interval: usize,
    pub(crate) narrow_band: f64,
    pub(crate) line_search: bool,
    pub(crate) recovery: RecoveryPolicy,
    #[serde(default)]
    pub(crate) schedule: Option<ResolutionSchedule>,
}

impl LevelSetIlt {
    /// Starts building an optimizer with the paper's defaults.
    pub fn builder() -> LevelSetIltBuilder {
        LevelSetIltBuilder::new()
    }

    /// Maximum iteration count `N`.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Velocity tolerance `ε` (Algorithm 1 stop condition).
    pub fn velocity_tolerance(&self) -> f64 {
        self.velocity_tolerance
    }

    /// Time-step scale `λ_t` (`Δt = λ_t / max|v|`).
    pub fn lambda_t(&self) -> f64 {
        self.lambda_t
    }

    /// Process-variation weight `w_pvb` (paper Eq. (13)).
    pub fn pvb_weight(&self) -> f64 {
        self.w_pvb
    }

    /// Whether the PRP conjugate-gradient rule is applied.
    pub fn conjugate_gradient(&self) -> bool {
        self.evolution == Evolution::PrpConjugateGradient
    }

    /// The velocity-combination scheme.
    pub fn evolution(&self) -> Evolution {
        self.evolution
    }

    /// Narrow-band half-width in pixels (0 = full-grid evolution).
    pub fn narrow_band(&self) -> f64 {
        self.narrow_band
    }

    /// Whether backtracking line search on the time step is enabled.
    pub fn line_search(&self) -> bool {
        self.line_search
    }

    /// Whether the Godunov upwind |∇ψ| scheme is used (central
    /// differences otherwise).
    pub fn upwind(&self) -> bool {
        self.upwind
    }

    /// Iterations between signed-distance reinitializations (0 = never).
    pub fn reinit_interval(&self) -> usize {
        self.reinit_interval
    }

    /// Weight of the optional curvature smoothing term (0 = off; this is
    /// an extension beyond the paper).
    pub fn curvature_weight(&self) -> f64 {
        self.curvature_weight
    }

    /// Iterations between mask snapshots in the result (0 = none).
    pub fn snapshot_interval(&self) -> usize {
        self.snapshot_interval
    }

    /// The solver-health recovery policy ([`RecoveryPolicy::Off`] by
    /// default, preserving the historical code path exactly).
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// The coarse-to-fine [`ResolutionSchedule`], if any (`None` by
    /// default — the flat single-resolution loop).
    pub fn schedule(&self) -> Option<ResolutionSchedule> {
        self.schedule
    }
}

impl Default for LevelSetIlt {
    fn default() -> Self {
        LevelSetIltBuilder::new().build()
    }
}

/// Builder for [`LevelSetIlt`].
#[derive(Clone, Debug)]
pub struct LevelSetIltBuilder {
    inner: LevelSetIlt,
}

impl LevelSetIltBuilder {
    /// Creates a builder with the defaults used in our experiments:
    /// `N = 50`, `ε = 1e−4`, `λ_t = 1`, `w_pvb = 1`, CG on, upwind on,
    /// reinitialization every 10 iterations, no curvature term.
    pub fn new() -> Self {
        Self {
            inner: LevelSetIlt {
                max_iterations: 50,
                velocity_tolerance: 1e-4,
                lambda_t: 1.0,
                w_pvb: 1.0,
                evolution: Evolution::PrpConjugateGradient,
                upwind: true,
                reinit_interval: 10,
                curvature_weight: 0.0,
                snapshot_interval: 0,
                narrow_band: 0.0,
                line_search: false,
                recovery: RecoveryPolicy::Off,
                schedule: None,
            },
        }
    }

    /// Sets the maximum iteration count `N`.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn max_iterations(mut self, n: usize) -> Self {
        assert!(n > 0, "iteration count must be positive");
        self.inner.max_iterations = n;
        self
    }

    /// Sets the stop tolerance `ε` on `max|v|`.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn velocity_tolerance(mut self, eps: f64) -> Self {
        assert!(eps >= 0.0, "tolerance must be non-negative");
        self.inner.velocity_tolerance = eps;
        self
    }

    /// Sets the time-step scale `λ_t` (the peak per-iteration change of
    /// `ψ`, in pixels).
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn lambda_t(mut self, lambda_t: f64) -> Self {
        assert!(lambda_t > 0.0, "lambda_t must be positive");
        self.inner.lambda_t = lambda_t;
        self
    }

    /// Sets the process-variation weight `w_pvb`.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn pvb_weight(mut self, w: f64) -> Self {
        assert!(w >= 0.0, "w_pvb must be non-negative");
        self.inner.w_pvb = w;
        self
    }

    /// Enables or disables the PRP conjugate-gradient combination
    /// (sugar over [`LevelSetIltBuilder::evolution`]).
    pub fn conjugate_gradient(mut self, enabled: bool) -> Self {
        self.inner.evolution = if enabled {
            Evolution::PrpConjugateGradient
        } else {
            Evolution::Plain
        };
        self
    }

    /// Selects the velocity-combination scheme explicitly.
    ///
    /// # Panics
    ///
    /// Panics if a heavy-ball coefficient is outside `[0, 1)`.
    pub fn evolution(mut self, evolution: Evolution) -> Self {
        if let Evolution::HeavyBall { beta } = evolution {
            assert!((0.0..1.0).contains(&beta), "momentum must be in [0, 1)");
        }
        self.inner.evolution = evolution;
        self
    }

    /// Enables backtracking line search: when a step increases the total
    /// cost, the time step is halved (up to 3 times) before accepting.
    /// Costs one extra forward simulation per backtrack (extension beyond
    /// the paper, which relies on the CFL rule alone).
    pub fn line_search(mut self, enabled: bool) -> Self {
        self.inner.line_search = enabled;
        self
    }

    /// Restricts the evolution to a narrow band of the given half-width
    /// (pixels) around the contour; 0 disables (extension beyond the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn narrow_band(mut self, width_px: f64) -> Self {
        assert!(width_px >= 0.0, "band width must be non-negative");
        self.inner.narrow_band = width_px;
        self
    }

    /// Chooses between Godunov upwind (true) and central differences.
    pub fn upwind(mut self, enabled: bool) -> Self {
        self.inner.upwind = enabled;
        self
    }

    /// Sets the reinitialization interval (0 disables).
    pub fn reinit_interval(mut self, every: usize) -> Self {
        self.inner.reinit_interval = every;
        self
    }

    /// Sets the curvature smoothing weight (0 disables; extension beyond
    /// the paper).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn curvature_weight(mut self, w: f64) -> Self {
        assert!(w >= 0.0, "curvature weight must be non-negative");
        self.inner.curvature_weight = w;
        self
    }

    /// Records a mask snapshot every `every` iterations (0 disables).
    pub fn snapshot_interval(mut self, every: usize) -> Self {
        self.inner.snapshot_interval = every;
        self
    }

    /// Sets the solver-health [`RecoveryPolicy`]. With the guard enabled
    /// a fault-free run is bit-identical to [`RecoveryPolicy::Off`] (see
    /// DESIGN.md §10); on trouble the optimizer rolls `ψ` back to the
    /// last healthy checkpoint and retries with a halved `λ_t`.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.inner.recovery = policy;
        self
    }

    /// Sets (or clears) the coarse-to-fine [`ResolutionSchedule`]. With
    /// `None` (the default) the optimizer runs the historical flat loop
    /// bit-for-bit; with a schedule, the stage iteration budgets replace
    /// [`LevelSetIltBuilder::max_iterations`] (which still bounds
    /// fallback flat runs on unschedulable grids).
    pub fn schedule(mut self, schedule: Option<ResolutionSchedule>) -> Self {
        self.inner.schedule = schedule;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> LevelSetIlt {
        self.inner
    }
}

impl Default for LevelSetIltBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documentation() {
        let opt = LevelSetIlt::default();
        assert_eq!(opt.max_iterations(), 50);
        assert_eq!(opt.pvb_weight(), 1.0);
        assert!(opt.conjugate_gradient());
        assert!(opt.upwind());
        assert_eq!(opt.reinit_interval(), 10);
        assert_eq!(opt.curvature_weight(), 0.0);
        assert_eq!(opt.recovery(), RecoveryPolicy::Off);
    }

    #[test]
    fn builder_sets_recovery_policy() {
        let policy = RecoveryPolicy::parse("strict").expect("valid");
        let opt = LevelSetIlt::builder().recovery(policy).build();
        assert_eq!(opt.recovery(), policy);
        assert!(opt.recovery().is_strict());
    }

    #[test]
    fn builder_sets_all_fields() {
        let opt = LevelSetIlt::builder()
            .max_iterations(5)
            .velocity_tolerance(0.01)
            .lambda_t(2.0)
            .pvb_weight(0.3)
            .conjugate_gradient(false)
            .upwind(false)
            .reinit_interval(0)
            .curvature_weight(0.1)
            .snapshot_interval(2)
            .build();
        assert_eq!(opt.max_iterations(), 5);
        assert_eq!(opt.velocity_tolerance(), 0.01);
        assert_eq!(opt.lambda_t(), 2.0);
        assert_eq!(opt.pvb_weight(), 0.3);
        assert!(!opt.conjugate_gradient());
        assert!(!opt.upwind());
        assert_eq!(opt.reinit_interval(), 0);
        assert_eq!(opt.curvature_weight(), 0.1);
        assert_eq!(opt.snapshot_interval(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_iterations_panics() {
        let _ = LevelSetIlt::builder().max_iterations(0);
    }
}
