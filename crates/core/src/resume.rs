//! Crash-safe checkpoint/resume and the run-lifecycle controls
//! ([`RunControl`]) that drive cooperative stops.
//!
//! A long optimization must be stoppable (deadline, `SIGINT`, iteration
//! budget, external request) and restartable after a crash without
//! losing progress or determinism. This module provides both halves:
//!
//! * [`RunControl`] bundles a [`CancelToken`], an optional wall-clock
//!   deadline, an optional global iteration budget, a checkpoint
//!   schedule and a resume source. The optimizer polls
//!   [`RunControl::stop_requested`] at every iteration boundary (which
//!   also covers CG restarts and the coarse→fine stage transition — the
//!   first fine iteration re-checks before doing any work), and tile
//!   fan-outs drain promptly via
//!   [`ParallelContext::par_map_cancellable`](lsopc_parallel::ParallelContext::par_map_cancellable).
//! * A versioned, checksummed checkpoint file format holding the exact
//!   loop state (`ψ`, CG velocity pair, best-so-far iterate, guard
//!   state, history, snapshots, schedule stage) in little-endian
//!   `f64::to_bits` form, written via atomic temp-file + rename so a
//!   crash mid-write can never destroy the previous good checkpoint.
//!   Restoring the state and continuing the loop replays the identical
//!   floating-point operations, so a resumed run is bit-identical to
//!   the uninterrupted one at the f64 default (DESIGN.md §15).
//!
//! Corrupt or mismatched files always surface as a categorized
//! [`CheckpointError`] — decoding validates magic, version, length and
//! checksum before interpreting a single field, and never panics or
//! over-allocates on hostile input.

use crate::config::LevelSetIlt;
use crate::guard::GuardSnapshot;
use crate::history::IterationRecord;
use crate::{CancelToken, GuardEvent, GuardEventKind, SolverDiagnostics, StopReason};
use lsopc_grid::{Grid, Scalar};
use lsopc_litho::LithoSimulator;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// File magic of an optimizer checkpoint.
const MAGIC: &[u8; 8] = b"LSCKPT01";
/// File magic of a per-tile checkpoint (see `TiledIlt`).
const TILE_MAGIC: &[u8; 8] = b"LSTILE01";
/// Format version; bumped on any layout change.
const VERSION: u32 = 1;
/// Decode guard: a corrupt length field must not trigger a huge
/// allocation, so grids and collections are capped well above any real
/// run (a 2^16 × 2^16 grid) before allocating.
const MAX_ELEMENTS: u64 = 1 << 32;

/// How and when the optimizer should persist loop state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSpec {
    pub(crate) path: PathBuf,
    pub(crate) every: usize,
}

impl CheckpointSpec {
    /// Checkpoint to `path` every `every` iterations (and always on a
    /// graceful stop). For tiled runs the path is a directory and
    /// `every` is ignored — tiles persist on completion.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        Self {
            path: path.into(),
            every,
        }
    }
}

/// Lifecycle controls for one optimization run: cancellation, deadline,
/// iteration budget, checkpointing and resume.
///
/// The default value imposes nothing — `optimize` with a default
/// control is bit-identical to an uncontrolled run. Stops are always
/// graceful: the optimizer returns its best-so-far iterate with
/// [`IltResult::stopped`](crate::IltResult::stopped) set instead of
/// erroring.
///
/// ```
/// use lsopc_core::RunControl;
/// use std::time::Duration;
///
/// let control = RunControl::new()
///     .with_deadline_in(Duration::from_secs(300))
///     .with_iteration_budget(40);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunControl {
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) iteration_budget: Option<usize>,
    pub(crate) checkpoint: Option<CheckpointSpec>,
    pub(crate) resume: Option<PathBuf>,
}

impl RunControl {
    /// An unconstrained control (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes `token`: cancelling it stops the run at the next
    /// iteration boundary.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Stops the run once the wall clock reaches `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stops the run `timeout` from now ([`RunControl::with_deadline`]
    /// with `Instant::now() + timeout`).
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Stops the run after `budget` iterations, counted globally across
    /// schedule stages (a coarse-to-fine run shares one budget). Unlike
    /// a deadline this is deterministic, which makes it the kill switch
    /// of choice for bit-identity tests.
    pub fn with_iteration_budget(mut self, budget: usize) -> Self {
        self.iteration_budget = Some(budget);
        self
    }

    /// Periodically persists loop state per `spec`.
    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Restores loop state from the checkpoint at `path` before the
    /// first iteration.
    pub fn with_resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// The cancel token, if one is attached.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Polls every stop source, in deterministic-first order: an
    /// exhausted iteration budget wins over a cancellation, which wins
    /// over an expired deadline. `iterations_done` is the number of
    /// iterations completed globally (across schedule stages).
    pub(crate) fn stop_requested(&self, iterations_done: usize) -> Option<StopReason> {
        if let Some(budget) = self.iteration_budget {
            if iterations_done >= budget {
                return Some(StopReason::Budget);
            }
        }
        if let Some(token) = &self.cancel {
            if let Some(reason) = token.cancelled() {
                return Some(reason);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::Deadline);
            }
        }
        None
    }

    /// True when a checkpoint file must be written or read, i.e. when
    /// the config hash is worth computing.
    pub(crate) fn persists(&self) -> bool {
        self.checkpoint.is_some() || self.resume.is_some()
    }
}

/// Why a checkpoint file could not be used.
///
/// Every failure mode of [`--resume`] is categorized here; none panics.
/// Surfaced through [`OptimizeError::Checkpoint`](crate::OptimizeError::Checkpoint).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading the file failed (rendered `std::io::Error`).
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The payload checksum does not match — truncated or corrupted.
    ChecksumMismatch,
    /// The payload is structurally invalid (with a description).
    Malformed(String),
    /// The checkpoint was written by a run with a different
    /// configuration, simulator geometry or target pattern.
    ConfigMismatch,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::BadMagic => f.write_str("not a checkpoint file (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            Self::ChecksumMismatch => {
                f.write_str("checkpoint checksum mismatch (truncated or corrupted file)")
            }
            Self::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            Self::ConfigMismatch => f.write_str(
                "checkpoint was written by a different configuration, geometry or target",
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Which stage of the run wrote a checkpoint. Resume re-enters the same
/// stage; the config hash guarantees the schedule (and hence the stage
/// structure) matches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum StageTag {
    /// Unscheduled single-resolution loop.
    Flat,
    /// Coarse stage of a [`ResolutionSchedule`](crate::ResolutionSchedule) run.
    Coarse,
    /// Full-resolution refinement stage of a scheduled run.
    Fine,
}

impl StageTag {
    fn code(self) -> u8 {
        match self {
            Self::Flat => 0,
            Self::Coarse => 1,
            Self::Fine => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, CheckpointError> {
        match code {
            0 => Ok(Self::Flat),
            1 => Ok(Self::Coarse),
            2 => Ok(Self::Fine),
            other => Err(CheckpointError::Malformed(format!(
                "unknown stage tag {other}"
            ))),
        }
    }
}

/// The complete mutable state of the optimizer loop at an iteration
/// boundary, captured in f64 (the master precision — exact for the f64
/// default, a lossless widening otherwise).
#[derive(Clone, Debug)]
pub(crate) struct LoopSnapshot {
    /// The iteration the resumed loop starts at (local to its stage).
    pub(crate) next_iteration: usize,
    /// The level-set function at the boundary.
    pub(crate) psi: Grid<f64>,
    /// PRP conjugate-gradient state: previous gradient velocity.
    pub(crate) prev_gradient_velocity: Option<Grid<f64>>,
    /// PRP conjugate-gradient state: previous search velocity.
    pub(crate) prev_velocity: Option<Grid<f64>>,
    /// Best-so-far iterate as `(cost, ψ)`; the mask is recomputed on
    /// restore (the loop always derives it from this exact `ψ`).
    pub(crate) best: Option<(f64, Grid<f64>)>,
    /// Health-guard state machine, when recovery is enabled.
    pub(crate) guard: Option<GuardSnapshot>,
    /// The guard's rollback target (pre-evolve `ψ` of the last healthy
    /// iteration).
    pub(crate) guard_checkpoint: Option<Grid<f64>>,
    /// Per-iteration history so far (includes rollback records).
    pub(crate) history: Vec<IterationRecord>,
    /// Mask snapshots taken so far, as `(iteration, mask)`.
    pub(crate) snapshots: Vec<(usize, Grid<f64>)>,
}

/// Completed-coarse-stage context embedded in fine-stage checkpoints so
/// a resume can reproduce the stage merge exactly without re-running
/// the coarse stage.
#[derive(Clone, Debug, Default)]
pub(crate) struct CoarseCarry {
    /// Iterations the coarse stage executed.
    pub(crate) iterations: usize,
    /// The coarse stage's full history.
    pub(crate) history: Vec<IterationRecord>,
    /// The coarse stage's guard diagnostics.
    pub(crate) diagnostics: SolverDiagnostics,
}

/// One decoded checkpoint file.
#[derive(Clone, Debug)]
pub(crate) struct Checkpoint {
    /// Hash binding the file to its configuration, simulator geometry
    /// and target pattern.
    pub(crate) config_hash: u64,
    /// Stage that wrote the file.
    pub(crate) stage: StageTag,
    /// The loop state.
    pub(crate) snapshot: LoopSnapshot,
    /// Coarse-stage context; present exactly when `stage` is `Fine`.
    pub(crate) carry: Option<CoarseCarry>,
}

/// One completed tile persisted by `TiledIlt` under a checkpoint
/// directory. Tiles are atomic units: there is no intra-tile state.
#[derive(Clone, Debug)]
pub(crate) struct TileCheckpoint {
    /// Hash binding the file to the tile's target content and solver
    /// configuration.
    pub(crate) hash: u64,
    /// Whether the tile was solved warm-started.
    pub(crate) warm: bool,
    /// Iterations the tile's solve executed.
    pub(crate) iterations: usize,
    /// Coarse-stage share of `iterations`.
    pub(crate) coarse_iterations: usize,
    /// The solved tile mask (halo included).
    pub(crate) mask: Grid<f64>,
    /// The solved tile level set (halo included).
    pub(crate) levelset: Grid<f64>,
}

/// File name of a tile checkpoint inside the checkpoint directory.
pub(crate) fn tile_entry_name(tx: usize, ty: usize) -> String {
    format!("tile_{tx}_{ty}.tile")
}

// --- hashing ------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, absorbed 8 bytes per step (LE words, the
/// final partial word zero-padded). The word stride keeps the serial
/// multiply chain ~8× shorter than byte-wise FNV — checksumming a
/// ~34 MB checkpoint payload is on the optimizer's periodic write path.
/// Any flipped or truncated byte still changes the digest.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Incremental FNV-1a hasher for configuration fingerprints.
struct Hasher(u64);

impl Hasher {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }
    fn u64(&mut self, v: u64) {
        self.0 = fnv1a(self.0, &v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }
}

/// Hashes everything that must match between the writing and the
/// resuming run for the replayed arithmetic to be identical: optimizer
/// parameters, simulator geometry, kernel rank, the target pattern and
/// (for warm starts) the initial level set.
pub(crate) fn config_hash<T: Scalar>(
    opt: &LevelSetIlt,
    sim: &LithoSimulator<T>,
    target: &Grid<T>,
    init: Option<&Grid<T>>,
) -> u64 {
    let mut h = Hasher::new();
    h.u64(opt.max_iterations as u64);
    h.f64(opt.velocity_tolerance);
    h.f64(opt.lambda_t);
    h.f64(opt.w_pvb);
    match opt.evolution {
        crate::Evolution::Plain => h.u64(0),
        crate::Evolution::PrpConjugateGradient => h.u64(1),
        crate::Evolution::HeavyBall { beta } => {
            h.u64(2);
            h.f64(beta);
        }
    }
    h.bool(opt.upwind);
    h.u64(opt.reinit_interval as u64);
    h.f64(opt.curvature_weight);
    h.u64(opt.snapshot_interval as u64);
    h.f64(opt.narrow_band);
    h.bool(opt.line_search);
    match opt.recovery {
        crate::RecoveryPolicy::Off => h.u64(0),
        crate::RecoveryPolicy::On(c) | crate::RecoveryPolicy::Strict(c) => {
            h.u64(if opt.recovery.is_strict() { 2 } else { 1 });
            h.u64(c.max_backoffs as u64);
            h.u64(c.divergence_window as u64);
            h.f64(c.divergence_tolerance);
            h.u64(c.stall_window as u64);
            h.f64(c.stall_tolerance);
            h.f64(c.cost_spike_factor);
            h.f64(c.gradient_spike_factor);
        }
    }
    match opt.schedule {
        None => h.u64(0),
        Some(s) => {
            h.u64(1);
            h.u64(s.coarse_px() as u64);
            h.u64(s.coarse_kernels() as u64);
            h.u64(s.coarse_iterations() as u64);
            h.u64(s.fine_iterations() as u64);
        }
    }
    h.u64(sim.grid_px() as u64);
    h.f64(sim.pixel_nm());
    h.u64(sim.optics().kernel_count() as u64);
    h.f64(sim.optics().field_nm());
    hash_grid_content(&mut h, target);
    match init {
        None => h.u64(0),
        Some(g) => {
            h.u64(1);
            hash_grid_content(&mut h, g);
        }
    }
    h.0
}

/// Folds a grid's dimensions and exact cell bit patterns into `h`.
fn hash_grid_content<T: Scalar>(h: &mut Hasher, g: &Grid<T>) {
    let (w, hh) = g.dims();
    h.u64(w as u64);
    h.u64(hh as u64);
    for v in g.as_slice() {
        h.f64(v.to_f64());
    }
}

// --- binary codec -------------------------------------------------------

/// Little-endian payload writer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn grid(&mut self, g: &Grid<f64>) {
        let (w, h) = g.dims();
        // One reservation per grid: a 1024² grid appends 8 MB, and
        // growth-doubling re-copies would dominate the encode.
        self.buf.reserve(16 + g.as_slice().len() * 8);
        self.u64(w as u64);
        self.u64(h as u64);
        for &v in g.as_slice() {
            self.f64(v);
        }
    }
    fn opt_grid(&mut self, g: Option<&Grid<f64>>) {
        match g {
            None => self.u8(0),
            Some(g) => {
                self.u8(1);
                self.grid(g);
            }
        }
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
        }
    }
}

/// Little-endian payload reader; every read is bounds-checked and every
/// length field is sanity-capped before allocation.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, CheckpointError>;

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CheckpointError::Malformed("payload truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn finished(&self) -> DecResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )))
        }
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> DecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CheckpointError::Malformed(format!(
                "invalid boolean byte {other}"
            ))),
        }
    }

    fn u64(&mut self) -> DecResult<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| CheckpointError::Malformed(format!("count {v} exceeds usize")))
    }

    fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A collection length, validated against both the element cap and
    /// the bytes actually remaining (`min_elem_bytes` per element) so a
    /// corrupt length can never trigger a large allocation.
    fn len(&mut self, min_elem_bytes: usize) -> DecResult<usize> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n > MAX_ELEMENTS || n.saturating_mul(min_elem_bytes as u64) > remaining {
            return Err(CheckpointError::Malformed(format!(
                "length {n} inconsistent with {remaining} remaining bytes"
            )));
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> DecResult<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("invalid UTF-8 string".into()))
    }

    fn grid(&mut self) -> DecResult<Grid<f64>> {
        let w = self.len(0)?;
        let h = self.len(0)?;
        let cells = (w as u64).checked_mul(h as u64).filter(|&c| {
            c > 0 && c <= MAX_ELEMENTS && c * 8 <= (self.bytes.len() - self.pos) as u64
        });
        let Some(cells) = cells else {
            return Err(CheckpointError::Malformed(format!(
                "grid dims {w}×{h} inconsistent with remaining payload"
            )));
        };
        let mut data = Vec::with_capacity(cells as usize);
        for _ in 0..cells {
            data.push(self.f64()?);
        }
        Ok(Grid::from_vec(w, h, data))
    }

    fn opt_grid(&mut self) -> DecResult<Option<Grid<f64>>> {
        if self.bool()? {
            Ok(Some(self.grid()?))
        } else {
            Ok(None)
        }
    }

    fn opt_f64(&mut self) -> DecResult<Option<f64>> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }
}

fn encode_record(e: &mut Enc, r: &IterationRecord) {
    e.u64(r.iteration as u64);
    e.f64(r.cost_nominal);
    e.f64(r.cost_pvb);
    e.f64(r.cost_total);
    e.f64(r.max_velocity);
    e.f64(r.time_step);
    e.f64(r.cg_beta);
    e.f64(r.elapsed_s);
    e.bool(r.rolled_back);
    e.u64(r.backoffs as u64);
    e.f64(r.lambda_scale);
}

fn decode_record(d: &mut Dec) -> DecResult<IterationRecord> {
    Ok(IterationRecord {
        iteration: d.usize()?,
        cost_nominal: d.f64()?,
        cost_pvb: d.f64()?,
        cost_total: d.f64()?,
        max_velocity: d.f64()?,
        time_step: d.f64()?,
        cg_beta: d.f64()?,
        elapsed_s: d.f64()?,
        rolled_back: d.bool()?,
        backoffs: d.usize()?,
        lambda_scale: d.f64()?,
    })
}

fn encode_history(e: &mut Enc, history: &[IterationRecord]) {
    e.u64(history.len() as u64);
    for r in history {
        encode_record(e, r);
    }
}

fn decode_history(d: &mut Dec) -> DecResult<Vec<IterationRecord>> {
    // One record is 8 u64/f64 fields + 1 usize + 1 f64 + 1 bool = 81 B.
    let n = d.len(81)?;
    (0..n).map(|_| decode_record(d)).collect()
}

fn encode_event_kind(e: &mut Enc, kind: &GuardEventKind) {
    match kind {
        GuardEventKind::NonFiniteCost => e.u8(0),
        GuardEventKind::NonFiniteGradient => e.u8(1),
        GuardEventKind::NonFiniteVelocity => e.u8(2),
        GuardEventKind::NonFiniteLevelSet => e.u8(3),
        GuardEventKind::CostDivergence { consecutive } => {
            e.u8(4);
            e.u64(*consecutive as u64);
        }
        GuardEventKind::CostSpike { ratio } => {
            e.u8(5);
            e.f64(*ratio);
        }
        GuardEventKind::GradientSpike { ratio } => {
            e.u8(6);
            e.f64(*ratio);
        }
        GuardEventKind::Stall { window } => {
            e.u8(7);
            e.u64(*window as u64);
        }
        GuardEventKind::WorkerPanic { message } => {
            e.u8(8);
            e.str(message);
        }
        GuardEventKind::Backoff { lambda_scale } => {
            e.u8(9);
            e.f64(*lambda_scale);
        }
        GuardEventKind::Recovered => e.u8(10),
        GuardEventKind::GaveUp => e.u8(11),
    }
}

fn decode_event_kind(d: &mut Dec) -> DecResult<GuardEventKind> {
    Ok(match d.u8()? {
        0 => GuardEventKind::NonFiniteCost,
        1 => GuardEventKind::NonFiniteGradient,
        2 => GuardEventKind::NonFiniteVelocity,
        3 => GuardEventKind::NonFiniteLevelSet,
        4 => GuardEventKind::CostDivergence {
            consecutive: d.usize()?,
        },
        5 => GuardEventKind::CostSpike { ratio: d.f64()? },
        6 => GuardEventKind::GradientSpike { ratio: d.f64()? },
        7 => GuardEventKind::Stall { window: d.usize()? },
        8 => GuardEventKind::WorkerPanic { message: d.str()? },
        9 => GuardEventKind::Backoff {
            lambda_scale: d.f64()?,
        },
        10 => GuardEventKind::Recovered,
        11 => GuardEventKind::GaveUp,
        other => {
            return Err(CheckpointError::Malformed(format!(
                "unknown guard event tag {other}"
            )))
        }
    })
}

fn encode_diagnostics(e: &mut Enc, d: &SolverDiagnostics) {
    e.u64(d.events.len() as u64);
    for event in &d.events {
        e.u64(event.iteration as u64);
        encode_event_kind(e, &event.kind);
    }
    e.u64(d.backoffs as u64);
    e.u64(d.recoveries as u64);
    e.bool(d.gave_up);
    e.f64(d.final_lambda_scale);
}

fn decode_diagnostics(d: &mut Dec) -> DecResult<SolverDiagnostics> {
    // An event is at least a u64 iteration + a tag byte.
    let n = d.len(9)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let iteration = d.usize()?;
        let kind = decode_event_kind(d)?;
        events.push(GuardEvent { iteration, kind });
    }
    Ok(SolverDiagnostics {
        events,
        backoffs: d.usize()?,
        recoveries: d.usize()?,
        gave_up: d.bool()?,
        final_lambda_scale: d.f64()?,
    })
}

fn encode_guard(e: &mut Enc, g: &GuardSnapshot) {
    encode_diagnostics(e, &g.diagnostics);
    e.f64(g.lambda_scale);
    e.u64(g.rising_streak as u64);
    e.u64(g.stall_streak as u64);
    e.opt_f64(g.last_healthy_cost);
    e.opt_f64(g.last_healthy_gradient_peak);
    e.bool(g.pending_recovery);
}

fn decode_guard(d: &mut Dec) -> DecResult<GuardSnapshot> {
    Ok(GuardSnapshot {
        diagnostics: decode_diagnostics(d)?,
        lambda_scale: d.f64()?,
        rising_streak: d.usize()?,
        stall_streak: d.usize()?,
        last_healthy_cost: d.opt_f64()?,
        last_healthy_gradient_peak: d.opt_f64()?,
        pending_recovery: d.bool()?,
    })
}

fn encode_snapshot(e: &mut Enc, s: &LoopSnapshot) {
    e.u64(s.next_iteration as u64);
    e.grid(&s.psi);
    e.opt_grid(s.prev_gradient_velocity.as_ref());
    e.opt_grid(s.prev_velocity.as_ref());
    match &s.best {
        None => e.u8(0),
        Some((cost, psi)) => {
            e.u8(1);
            e.f64(*cost);
            e.grid(psi);
        }
    }
    match &s.guard {
        None => e.u8(0),
        Some(g) => {
            e.u8(1);
            encode_guard(e, g);
        }
    }
    e.opt_grid(s.guard_checkpoint.as_ref());
    encode_history(e, &s.history);
    e.u64(s.snapshots.len() as u64);
    for (iteration, mask) in &s.snapshots {
        e.u64(*iteration as u64);
        e.grid(mask);
    }
}

fn decode_snapshot(d: &mut Dec) -> DecResult<LoopSnapshot> {
    let next_iteration = d.usize()?;
    let psi = d.grid()?;
    let prev_gradient_velocity = d.opt_grid()?;
    let prev_velocity = d.opt_grid()?;
    let best = if d.bool()? {
        Some((d.f64()?, d.grid()?))
    } else {
        None
    };
    let guard = if d.bool()? {
        Some(decode_guard(d)?)
    } else {
        None
    };
    let guard_checkpoint = d.opt_grid()?;
    let history = decode_history(d)?;
    // A snapshot entry is at least a u64 iteration + grid dims.
    let n = d.len(24)?;
    let mut snapshots = Vec::with_capacity(n);
    for _ in 0..n {
        let iteration = d.usize()?;
        snapshots.push((iteration, d.grid()?));
    }
    Ok(LoopSnapshot {
        next_iteration,
        psi,
        prev_gradient_velocity,
        prev_velocity,
        best,
        guard,
        guard_checkpoint,
        history,
        snapshots,
    })
}

// --- file I/O -----------------------------------------------------------

/// Writes `bytes` to `path` atomically: a sibling temp file is written
/// and synced, then renamed over the destination. A crash at any point
/// leaves either the old file or the new one — never a torn mix.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_parts(path, &[], bytes)
}

/// [`atomic_write`] of `header` followed by `payload`, without first
/// gluing them into one allocation — the checkpoint payload can be tens
/// of megabytes, and the extra copy is measurable on the periodic write
/// path.
fn atomic_write_parts(path: &Path, header: &[u8], payload: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(header)?;
    file.write_all(payload)?;
    file.sync_all()?;
    drop(file);
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Frames a payload with magic, version, length and checksum and writes
/// it atomically.
fn write_framed(path: &Path, magic: &[u8; 8], payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 28];
    header[..8].copy_from_slice(magic);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..20].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[20..28].copy_from_slice(&fnv1a(FNV_OFFSET, payload).to_le_bytes());
    atomic_write_parts(path, &header, payload)
}

/// Reads a framed file, validating magic, version, length and checksum
/// before returning the payload.
fn read_framed(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>, CheckpointError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 28 || &bytes[..8] != magic {
        if bytes.len() >= 8 && &bytes[..8] == magic {
            return Err(CheckpointError::ChecksumMismatch);
        }
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let payload = &bytes[28..];
    if payload.len() as u64 != len {
        return Err(CheckpointError::ChecksumMismatch);
    }
    if fnv1a(FNV_OFFSET, payload) != checksum {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(payload.to_vec())
}

/// Serializes and atomically writes an optimizer checkpoint.
pub(crate) fn write_checkpoint(path: &Path, ck: &Checkpoint) -> io::Result<()> {
    let mut e = Enc::new();
    e.u64(ck.config_hash);
    e.u8(ck.stage.code());
    encode_snapshot(&mut e, &ck.snapshot);
    match &ck.carry {
        None => e.u8(0),
        Some(carry) => {
            e.u8(1);
            e.u64(carry.iterations as u64);
            encode_history(&mut e, &carry.history);
            encode_diagnostics(&mut e, &carry.diagnostics);
        }
    }
    let total = 28 + e.buf.len() as u64;
    write_framed(path, MAGIC, &e.buf)?;
    // Full on-disk size (28-byte frame header + payload); accumulated
    // so job summaries can report checkpoint I/O volume.
    lsopc_trace::count("checkpoint.bytes", total);
    Ok(())
}

/// Reads, validates and decodes an optimizer checkpoint.
pub(crate) fn load_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let payload = read_framed(path, MAGIC)?;
    let mut d = Dec::new(&payload);
    let config_hash = d.u64()?;
    let stage = StageTag::from_code(d.u8()?)?;
    let snapshot = decode_snapshot(&mut d)?;
    let carry = if d.bool()? {
        Some(CoarseCarry {
            iterations: d.usize()?,
            history: decode_history(&mut d)?,
            diagnostics: decode_diagnostics(&mut d)?,
        })
    } else {
        None
    };
    d.finished()?;
    if (stage == StageTag::Fine) != carry.is_some() {
        return Err(CheckpointError::Malformed(
            "coarse carry present iff stage is fine".into(),
        ));
    }
    Ok(Checkpoint {
        config_hash,
        stage,
        snapshot,
        carry,
    })
}

/// Serializes and atomically writes a tile checkpoint.
pub(crate) fn write_tile_checkpoint(path: &Path, tc: &TileCheckpoint) -> io::Result<()> {
    let mut e = Enc::new();
    e.u64(tc.hash);
    e.bool(tc.warm);
    e.u64(tc.iterations as u64);
    e.u64(tc.coarse_iterations as u64);
    e.grid(&tc.mask);
    e.grid(&tc.levelset);
    write_framed(path, TILE_MAGIC, &e.buf)
}

/// Reads, validates and decodes a tile checkpoint.
pub(crate) fn load_tile_checkpoint(path: &Path) -> Result<TileCheckpoint, CheckpointError> {
    let payload = read_framed(path, TILE_MAGIC)?;
    let mut d = Dec::new(&payload);
    let tc = TileCheckpoint {
        hash: d.u64()?,
        warm: d.bool()?,
        iterations: d.usize()?,
        coarse_iterations: d.usize()?,
        mask: d.grid()?,
        levelset: d.grid()?,
    };
    d.finished()?;
    Ok(tc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(seed: f64, w: usize, h: usize) -> Grid<f64> {
        Grid::from_fn(w, h, |x, y| seed + (x * 31 + y * 7) as f64 * 0.125)
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            config_hash: 0xfeed_beef_dead_cafe,
            stage: StageTag::Fine,
            snapshot: LoopSnapshot {
                next_iteration: 7,
                psi: grid(0.5, 8, 8),
                prev_gradient_velocity: Some(grid(-1.25, 8, 8)),
                prev_velocity: None,
                best: Some((123.456, grid(0.75, 8, 8))),
                guard: Some(GuardSnapshot {
                    diagnostics: SolverDiagnostics {
                        events: vec![
                            GuardEvent {
                                iteration: 3,
                                kind: GuardEventKind::CostSpike { ratio: 101.5 },
                            },
                            GuardEvent {
                                iteration: 3,
                                kind: GuardEventKind::WorkerPanic {
                                    message: "boom ω".into(),
                                },
                            },
                        ],
                        backoffs: 1,
                        recoveries: 1,
                        gave_up: false,
                        final_lambda_scale: 0.5,
                    },
                    lambda_scale: 0.5,
                    rising_streak: 2,
                    stall_streak: 0,
                    last_healthy_cost: Some(99.0),
                    last_healthy_gradient_peak: None,
                    pending_recovery: true,
                }),
                guard_checkpoint: Some(grid(0.0, 8, 8)),
                history: vec![IterationRecord::default(), IterationRecord::default()],
                snapshots: vec![(0, grid(1.0, 8, 8))],
            },
            carry: Some(CoarseCarry {
                iterations: 4,
                history: vec![IterationRecord::default()],
                diagnostics: SolverDiagnostics::default(),
            }),
        }
    }

    fn assert_grids_eq(a: &Grid<f64>, b: &Grid<f64>) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("lsopc_ck_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("state.ckpt");
        let ck = sample_checkpoint();
        write_checkpoint(&path, &ck).expect("write");
        let back = load_checkpoint(&path).expect("load");
        assert_eq!(back.config_hash, ck.config_hash);
        assert_eq!(back.stage, ck.stage);
        assert_eq!(back.snapshot.next_iteration, 7);
        assert_grids_eq(&back.snapshot.psi, &ck.snapshot.psi);
        assert_grids_eq(
            back.snapshot.prev_gradient_velocity.as_ref().expect("pgv"),
            ck.snapshot.prev_gradient_velocity.as_ref().expect("pgv"),
        );
        assert!(back.snapshot.prev_velocity.is_none());
        let (cost, bpsi) = back.snapshot.best.as_ref().expect("best");
        assert_eq!(cost.to_bits(), 123.456f64.to_bits());
        assert_grids_eq(bpsi, &ck.snapshot.best.as_ref().expect("best").1);
        let guard = back.snapshot.guard.as_ref().expect("guard");
        assert_eq!(guard.diagnostics.events.len(), 2);
        assert_eq!(
            guard.diagnostics.events[1].kind,
            GuardEventKind::WorkerPanic {
                message: "boom ω".into()
            }
        );
        assert!(guard.pending_recovery);
        assert_eq!(back.snapshot.history, ck.snapshot.history);
        assert_eq!(back.carry.as_ref().expect("carry").iterations, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_always_a_categorized_error() {
        let dir = std::env::temp_dir().join(format!("lsopc_ck_fuzz_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("state.ckpt");
        write_checkpoint(&path, &sample_checkpoint()).expect("write");
        let good = std::fs::read(&path).expect("read back");

        // Truncations at every prefix length (sampled) decode as errors.
        for cut in (0..good.len()).step_by(97).chain([good.len() - 1]) {
            std::fs::write(&path, &good[..cut]).expect("truncate");
            assert!(
                load_checkpoint(&path).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Flipping any byte breaks the frame, the checksum or a field.
        for pos in (0..good.len()).step_by(53) {
            let mut bad = good.clone();
            bad[pos] ^= 0xff;
            std::fs::write(&path, &bad).expect("corrupt");
            assert!(
                load_checkpoint(&path).is_err(),
                "byte flip at {pos} must fail"
            );
        }
        // Oversized length fields must not allocate absurd buffers.
        let mut bad = good.clone();
        let grid_w_at = 28 + 8 + 1 + 8; // payload + hash + stage + next_iteration
        bad[grid_w_at..grid_w_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bad).expect("corrupt dims");
        assert!(load_checkpoint(&path).is_err(), "absurd dims must fail");

        assert!(
            matches!(
                load_checkpoint(&dir.join("missing.ckpt")),
                Err(CheckpointError::Io(_))
            ),
            "missing file is an I/O error"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tile_checkpoint_roundtrips_and_rejects_optimizer_files() {
        let dir = std::env::temp_dir().join(format!("lsopc_tile_ck_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(tile_entry_name(2, 3));
        assert_eq!(tile_entry_name(2, 3), "tile_2_3.tile");
        let tc = TileCheckpoint {
            hash: 42,
            warm: true,
            iterations: 9,
            coarse_iterations: 4,
            mask: grid(0.0, 6, 6).binarize(0.5),
            levelset: grid(-0.5, 6, 6),
        };
        write_tile_checkpoint(&path, &tc).expect("write");
        let back = load_tile_checkpoint(&path).expect("load");
        assert_eq!(back.hash, 42);
        assert!(back.warm);
        assert_eq!((back.iterations, back.coarse_iterations), (9, 4));
        assert_grids_eq(&back.levelset, &tc.levelset);

        // An optimizer checkpoint is not a tile checkpoint.
        let ck_path = dir.join("state.ckpt");
        write_checkpoint(&ck_path, &sample_checkpoint()).expect("write");
        assert!(matches!(
            load_tile_checkpoint(&ck_path),
            Err(CheckpointError::BadMagic)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("lsopc_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("value.bin");
        atomic_write(&path, b"first").expect("write");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        assert!(
            !dir.join("value.bin.tmp").exists(),
            "temp file must not linger"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_order_is_budget_then_cancel_then_deadline() {
        let token = CancelToken::new();
        token.cancel(StopReason::External);
        let control = RunControl::new()
            .with_iteration_budget(5)
            .with_cancel(token)
            .with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(control.stop_requested(5), Some(StopReason::Budget));
        assert_eq!(control.stop_requested(4), Some(StopReason::External));
        let deadline_only =
            RunControl::new().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(deadline_only.stop_requested(0), Some(StopReason::Deadline));
        assert_eq!(RunControl::new().stop_requested(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_checkpoint_interval_panics() {
        let _ = CheckpointSpec::new("x", 0);
    }
}
