//! The Polak–Ribière–Polyak conjugate-gradient rule (paper Eq. (15)–(16)).

use lsopc_grid::{dot, l2_norm_sq, Grid, Scalar};

/// The PRP coefficient
/// `λ = (‖g_i‖² − g_i·g_{i−1}) / ‖g_{i−1}‖²` (paper Eq. (16)), with the
/// standard PRP+ safeguard `λ ← max(λ, 0)` that restarts the search
/// direction whenever the raw coefficient turns negative (see DESIGN.md
/// §7).
///
/// Here `g` is the gradient-velocity `G(M)·|∇ψ|` of the paper.
///
/// Returns 0 when the previous gradient is (numerically) zero.
///
/// # Panics
///
/// Panics if the grids differ in shape.
///
/// # Example
///
/// ```
/// use lsopc_core::cg::prp_beta;
/// use lsopc_grid::Grid;
///
/// let g_prev = Grid::from_vec(2, 1, vec![1.0, 0.0]);
/// // Same gradient twice → numerator ‖g‖² − g·g = 0 → λ = 0 (restart).
/// assert_eq!(prp_beta(&g_prev, &g_prev), 0.0);
/// // Orthogonal new gradient → λ = ‖g‖²/‖g_prev‖² = 4.
/// let g = Grid::from_vec(2, 1, vec![0.0, 2.0]);
/// assert_eq!(prp_beta(&g, &g_prev), 4.0);
/// ```
pub fn prp_beta<T: Scalar>(g: &Grid<T>, g_prev: &Grid<T>) -> f64 {
    let denom = l2_norm_sq(g_prev);
    // The tiny-denominator floor is precision-relative: f64 keeps the
    // historical 1e-300 (the f64 path must stay bit-identical), while
    // coarser scalars get a floor well above their subnormal range so a
    // vanishing gradient restarts the direction instead of producing an
    // inf/NaN coefficient.
    let floor = if T::EPSILON.to_f64() > f64::EPSILON {
        1e-30
    } else {
        1e-300
    };
    if denom.to_f64() <= floor {
        return 0.0;
    }
    let beta = ((l2_norm_sq(g) - dot(g, g_prev)) / denom).to_f64();
    beta.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_gradients_restart() {
        let g = Grid::from_vec(3, 1, vec![1.0, -2.0, 0.5]);
        assert_eq!(prp_beta(&g, &g), 0.0);
    }

    #[test]
    fn zero_previous_gradient_is_safe() {
        let g = Grid::from_vec(2, 1, vec![1.0, 1.0]);
        let zero = Grid::new(2, 1, 0.0);
        assert_eq!(prp_beta(&g, &zero), 0.0);
    }

    #[test]
    fn negative_raw_coefficient_is_clamped() {
        // g·g_prev > ‖g‖² makes the raw PRP negative.
        let g = Grid::from_vec(2, 1, vec![1.0, 0.0]);
        let g_prev = Grid::from_vec(2, 1, vec![3.0, 0.0]);
        assert_eq!(prp_beta(&g, &g_prev), 0.0);
    }

    #[test]
    fn f32_gradients_produce_finite_beta() {
        let g = Grid::from_vec(2, 1, vec![2.0_f32, 1.0]);
        let g_prev = Grid::from_vec(2, 1, vec![1.0_f32, 1.0]);
        assert_eq!(prp_beta(&g, &g_prev), 1.0);
        // Denominator below the f32 floor restarts instead of overflowing.
        let tiny = Grid::new(2, 1, 1e-20_f32);
        assert_eq!(prp_beta(&g, &tiny), 0.0);
    }

    #[test]
    fn matches_hand_computation() {
        let g = Grid::from_vec(2, 1, vec![2.0, 1.0]);
        let g_prev = Grid::from_vec(2, 1, vec![1.0, 1.0]);
        // (‖g‖² − g·g_prev)/‖g_prev‖² = (5 − 3)/2 = 1.
        assert_eq!(prp_beta(&g, &g_prev), 1.0);
    }
}
