//! Sub-resolution assist feature (SRAF) seeding.
//!
//! Isolated features have the weakest process window: no neighbouring
//! pattern scatters light into their sidelobes. Production flows insert
//! *sub-resolution* assist bars next to isolated edges — too small to
//! print, but enough to make the main feature image more like a dense
//! pattern. The paper's level-set evolution can grow such islands by
//! itself; seeding them explicitly (and letting the optimizer refine
//! them) is the standard acceleration of that process and is provided
//! here as an extension.
//!
//! The seeding is geometric: a band of mask at signed distance
//! `[distance, distance + width]` from the target, cleaned of fragments
//! too small to matter. Where two features are closer than twice the
//! assist distance their bands merge into a single scattering bar, which
//! matches manual SRAF practice.

use lsopc_geometry::label_components;
use lsopc_grid::Grid;
use lsopc_levelset::signed_distance;
use serde::{Deserialize, Serialize};

/// SRAF seeding rule (distances in pixels of the working grid).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SrafRule {
    /// Gap between the target edge and the assist bar, px.
    pub distance_px: f64,
    /// Assist bar width, px (keep below the printing threshold!).
    pub width_px: f64,
    /// Fragments below this pixel count are dropped.
    pub min_fragment_px: usize,
}

impl SrafRule {
    /// A reasonable default for the ICCAD 2013 system at 4 nm/px:
    /// 80 nm gap, 24 nm bars (sub-resolution for isolated features).
    pub fn iccad2013_4nm() -> Self {
        Self {
            distance_px: 20.0,
            width_px: 6.0,
            min_fragment_px: 30,
        }
    }
}

/// Seeds SRAFs around a binary target, returning the combined mask
/// (target + assist bars).
///
/// # Panics
///
/// Panics if the rule's distance or width is not positive.
///
/// # Example
///
/// ```
/// use lsopc_core::sraf::{seed_srafs, SrafRule};
/// use lsopc_grid::Grid;
///
/// let target = Grid::from_fn(128, 128, |x, y| {
///     if (56..72).contains(&x) && (32..96).contains(&y) { 1.0 } else { 0.0 }
/// });
/// let rule = SrafRule { distance_px: 12.0, width_px: 4.0, min_fragment_px: 10 };
/// let seeded = seed_srafs(&target, rule);
/// // The assist bars add mask area without touching the target.
/// assert!(seeded.sum() > target.sum());
/// assert!(seeded.zip_map(&target, |&s, &t| s - t).as_slice().iter().all(|&d| d >= 0.0));
/// ```
pub fn seed_srafs(target: &Grid<f64>, rule: SrafRule) -> Grid<f64> {
    assert!(rule.distance_px > 0.0, "assist distance must be positive");
    assert!(rule.width_px > 0.0, "assist width must be positive");
    let psi = signed_distance(target);
    // The raw assist band.
    let band = psi.map(|&d| {
        if d >= rule.distance_px && d <= rule.distance_px + rule.width_px {
            1.0
        } else {
            0.0
        }
    });
    // Drop sub-critical fragments (corner crumbs).
    let (labels, comps) = label_components(&band, 0.5);
    let keep: Vec<bool> = comps
        .iter()
        .map(|c| c.area >= rule.min_fragment_px)
        .collect();
    let mut out = target.binarize(0.5);
    for (idx, &label) in labels.as_slice().iter().enumerate() {
        if label != 0 && keep[(label - 1) as usize] {
            out.as_mut_slice()[idx] = 1.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_litho::{LithoSimulator, ProcessCondition};
    use lsopc_optics::OpticsConfig;

    fn isolated_wire(n: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| {
            if (n / 2 - 8..n / 2 + 8).contains(&x) && (n / 4..3 * n / 4).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    fn rule() -> SrafRule {
        SrafRule {
            distance_px: 12.0,
            width_px: 4.0,
            min_fragment_px: 10,
        }
    }

    #[test]
    fn assists_surround_but_do_not_touch_the_target() {
        let target = isolated_wire(128);
        let seeded = seed_srafs(&target, rule());
        // Added area exists and is disjoint from the target.
        let added = seeded.zip_map(&target, |&s, &t| s - t);
        assert!(added.sum() > 0.0);
        assert!(added.as_slice().iter().all(|&d| d >= 0.0));
        // Every added pixel is at least distance_px from the target.
        let psi = lsopc_levelset::signed_distance(&target);
        for (i, &a) in added.as_slice().iter().enumerate() {
            if a > 0.0 {
                assert!(psi.as_slice()[i] >= 12.0 - 1e-9);
            }
        }
    }

    #[test]
    fn tiny_fragments_are_dropped() {
        let target = isolated_wire(128);
        let strict = SrafRule {
            min_fragment_px: usize::MAX,
            ..rule()
        };
        let seeded = seed_srafs(&target, strict);
        assert_eq!(seeded, target.binarize(0.5), "everything filtered out");
    }

    #[test]
    fn srafs_do_not_print() {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(8), 128, 4.0)
                .expect("valid configuration");
        let target = isolated_wire(128);
        let seeded = seed_srafs(&target, rule());
        let printed = sim.print(&seeded, ProcessCondition::NOMINAL);
        // Components of the print: exactly one (the wire), no printed
        // assist bars.
        let (_, comps) = label_components(&printed, 0.5);
        assert_eq!(comps.len(), 1, "SRAFs printed!");
    }

    #[test]
    fn srafs_brighten_the_feature_edge() {
        // The scattering bars add constructive light at the main feature
        // edge — the whole point of SRAFs.
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(8), 128, 4.0)
                .expect("valid configuration");
        let target = isolated_wire(128);
        let seeded = seed_srafs(&target, rule());
        let plain = sim.aerial(&target, ProcessCondition::NOMINAL);
        let assisted = sim.aerial(&seeded, ProcessCondition::NOMINAL);
        // Sample on the wire edge (x = 56, mid-height).
        let edge = (56usize, 64usize);
        assert!(
            assisted[edge] > plain[edge],
            "edge intensity {} -> {}",
            plain[edge],
            assisted[edge]
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_panics() {
        let _ = seed_srafs(
            &Grid::new(16, 16, 0.0),
            SrafRule {
                distance_px: 0.0,
                width_px: 2.0,
                min_fragment_px: 1,
            },
        );
    }
}
