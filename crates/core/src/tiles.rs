//! Tile-partitioned optimization for large fields.
//!
//! Full-chip ILT never optimizes one giant grid: the layout is cut into
//! tiles with an optical-interaction halo, each tile is optimized
//! independently (embarrassingly parallel in production), and the tile
//! cores are stitched back together. The optical interaction range of the
//! 193 nm / NA 1.35 system is a few hundred nanometres, so a halo of
//! ~128 nm already isolates tiles to high accuracy.
//!
//! This module implements that flow on top of [`LevelSetIlt`]; it is an
//! extension beyond the paper (whose benchmarks are single tiles by
//! construction). With a [`WarmStartCache`] attached, repeated tile
//! patterns are recognized by content (translation-invariant
//! fingerprints) and solved with a short warm refinement from the cached
//! ψ instead of a full cold run — see DESIGN.md §14.

use crate::resume::{self, RunControl, TileCheckpoint};
use crate::warmstart::{fingerprint, PatternFingerprint, WarmStartCache};
use crate::{IltResult, LevelSetIlt, OptimizeError, SolverDiagnostics, StopReason};
use lsopc_grid::Grid;
use lsopc_litho::{BuildSimulatorError, LithoSimulator};
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Error from tiled optimization.
#[derive(Debug)]
pub enum TiledError {
    /// The tile/halo configuration is invalid for the target grid.
    BadConfiguration(String),
    /// Building a tile simulator failed.
    Simulator(BuildSimulatorError),
    /// A tile optimization failed.
    Optimize(OptimizeError),
    /// The checkpoint/resume directory could not be used.
    Checkpoint(String),
}

impl fmt::Display for TiledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfiguration(msg) => write!(f, "bad tile configuration: {msg}"),
            Self::Simulator(e) => write!(f, "tile simulator: {e}"),
            Self::Optimize(e) => write!(f, "tile optimization: {e}"),
            Self::Checkpoint(msg) => write!(f, "tile checkpoint: {msg}"),
        }
    }
}

impl Error for TiledError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::BadConfiguration(_) | Self::Checkpoint(_) => None,
            Self::Simulator(e) => Some(e),
            Self::Optimize(e) => Some(e),
        }
    }
}

impl From<BuildSimulatorError> for TiledError {
    fn from(e: BuildSimulatorError) -> Self {
        Self::Simulator(e)
    }
}

impl From<OptimizeError> for TiledError {
    fn from(e: OptimizeError) -> Self {
        Self::Optimize(e)
    }
}

/// What a tiled run did: tile counts and iteration totals, split by
/// whether the tile solved cold (full run from the target's signed
/// distance) or warm (short refinement from a cached ψ).
///
/// "Full" iterations are full-resolution ones — with a
/// [`ResolutionSchedule`](crate::ResolutionSchedule) on the tile
/// optimizer, coarse-stage iterations are tallied separately.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TiledStats {
    /// Non-empty tiles optimized.
    pub tiles: usize,
    /// Tiles solved cold.
    pub cold: usize,
    /// Tiles warm-started from the cache.
    pub warm: usize,
    /// Full-resolution iterations spent on cold tiles.
    pub cold_full_iterations: usize,
    /// Full-resolution iterations spent on warm tiles.
    pub warm_full_iterations: usize,
    /// Coarse-stage iterations across all tiles (0 without a schedule).
    pub coarse_iterations: usize,
    /// Tiles restored from a checkpoint directory instead of solved
    /// (also counted in [`TiledStats::tiles`] and the cold/warm split).
    pub resumed: usize,
    /// Tiles left unsolved by a cancellation or deadline; the stitched
    /// output falls back to the target pattern in those regions.
    pub unfinished: usize,
    /// Why the run stopped early (`None` when every tile completed).
    pub stopped: Option<StopReason>,
}

impl TiledStats {
    /// Total full-resolution iterations across all tiles.
    pub fn full_iterations(&self) -> usize {
        self.cold_full_iterations + self.warm_full_iterations
    }

    fn tally(&mut self, result: &IltResult<f64>, warm: bool) {
        self.tiles += 1;
        let full = result.iterations - result.coarse_iterations;
        self.coarse_iterations += result.coarse_iterations;
        if warm {
            self.warm += 1;
            self.warm_full_iterations += full;
        } else {
            self.cold += 1;
            self.cold_full_iterations += full;
        }
    }
}

/// Tile-partitioned level-set ILT.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_core::{LevelSetIlt, TiledIlt};
/// use lsopc_grid::Grid;
/// use lsopc_optics::OpticsConfig;
///
/// let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(20).build(), 128, 64)?;
/// let target = Grid::new(512, 512, 0.0);
/// let mask = tiled.optimize(&OpticsConfig::iccad2013(), &target, 4.0)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TiledIlt {
    optimizer: LevelSetIlt,
    core_px: usize,
    halo_px: usize,
    warm_start: Option<WarmStartCache>,
    warm_iterations: Option<usize>,
    /// `None` → [`ParallelContext::global`].
    ctx: Option<ParallelContext>,
    control: Option<RunControl>,
    /// Cache handles injected into the internal tile simulator.
    caches: Option<lsopc_litho::SimCaches>,
    /// rfft routing for the internal tile simulator's backend (`None` →
    /// the process default).
    rfft: Option<bool>,
}

impl TiledIlt {
    /// Creates a tiled optimizer: tiles of `core_px` pixels, extended by
    /// `halo_px` of context on every side (`core + 2·halo` must be a
    /// power of two).
    ///
    /// # Errors
    ///
    /// Returns [`TiledError::BadConfiguration`] when the geometry is
    /// degenerate: a zero core, a halo at least as large as the core
    /// (the "core" would be mostly duplicated context), an overflowing
    /// tile size, or a tile that is not a power of two (FFT
    /// requirement).
    pub fn new(optimizer: LevelSetIlt, core_px: usize, halo_px: usize) -> Result<Self, TiledError> {
        let bad = |msg: String| Err(TiledError::BadConfiguration(msg));
        if core_px == 0 {
            return bad("core size must be positive".into());
        }
        if halo_px >= core_px {
            return bad(format!(
                "halo {halo_px}px must be smaller than the {core_px}px core"
            ));
        }
        let Some(tile) = halo_px
            .checked_mul(2)
            .and_then(|h2| core_px.checked_add(h2))
        else {
            return bad(format!("tile size {core_px} + 2·{halo_px} overflows"));
        };
        if !tile.is_power_of_two() {
            return bad(format!("core + 2·halo = {tile} must be a power of two"));
        }
        Ok(Self {
            optimizer,
            core_px,
            halo_px,
            warm_start: None,
            warm_iterations: None,
            ctx: None,
            control: None,
            caches: None,
            rfft: None,
        })
    }

    /// Attaches a [`WarmStartCache`]: tiles whose pattern (up to
    /// whole-pixel translation) is already cached — from an earlier run
    /// via a shared/directory cache, or from an earlier tile of this run
    /// — skip the cold solve and run a short refinement from the cached
    /// ψ.
    pub fn with_warm_start(mut self, cache: WarmStartCache) -> Self {
        self.warm_start = Some(cache);
        self
    }

    /// Overrides the warm-tile refinement budget (default: a quarter of
    /// the optimizer's `max_iterations`, at least 2).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_warm_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "warm iteration budget must be positive");
        self.warm_iterations = Some(iterations);
        self
    }

    /// Runs tile optimizations on an explicit [`ParallelContext`] instead
    /// of the process-global one (tests and thread-count sweeps).
    pub fn with_context(mut self, ctx: ParallelContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Attaches run-lifecycle controls ([`RunControl`]). The cancel
    /// token and deadline are observed at tile-claim points (unclaimed
    /// tiles drain promptly after a stop) and inside every tile's
    /// iteration loop; tiles interrupted mid-solve stitch their
    /// best-so-far mask and count as
    /// [`unfinished`](TiledStats::unfinished).
    ///
    /// For tiled runs a [`CheckpointSpec`](crate::CheckpointSpec) path
    /// names a *directory*: each completed tile is persisted there as
    /// its own file (`tile_<x>_<y>.tile`), and a resume path restores
    /// completed tiles from such a directory, re-solving any missing,
    /// corrupt or configuration-mismatched entries. Iteration budgets
    /// are rejected ([`TiledError::BadConfiguration`]) — a global
    /// iteration count is not meaningful across concurrent tiles.
    pub fn with_run_control(mut self, control: RunControl) -> Self {
        self.control = Some(control);
        self
    }

    /// Injects shared cache handles ([`lsopc_litho::SimCaches`]) into the
    /// tile simulator built by [`Self::optimize_with_stats`], so repeated
    /// tiled runs in one host process (the engine) amortize FFT plans and
    /// embedded spectra instead of re-warming the process globals.
    pub fn with_caches(mut self, caches: lsopc_litho::SimCaches) -> Self {
        self.caches = Some(caches);
        self
    }

    /// Overrides the rfft routing of the tile simulator's backend (the
    /// tiled path builds its simulator internally, so callers cannot set
    /// this on a backend themselves). `None`/unset → the process default
    /// ([`lsopc_fft::rfft_default`]).
    pub fn with_rfft(mut self, enabled: bool) -> Self {
        self.rfft = Some(enabled);
        self
    }

    fn ctx(&self) -> &ParallelContext {
        self.ctx
            .as_ref()
            .unwrap_or_else(|| ParallelContext::global())
    }

    /// Tile size including halo.
    pub fn tile_px(&self) -> usize {
        self.core_px + 2 * self.halo_px
    }

    /// The warm-tile refinement budget in effect.
    pub fn warm_iterations(&self) -> usize {
        self.warm_iterations
            .unwrap_or_else(|| (self.optimizer.max_iterations / 4).max(2))
    }

    /// Hash binding a tile checkpoint to the solver configuration, the
    /// tile geometry and the tile's target content — a mismatch on any
    /// of them re-solves the tile instead of restoring a stale result.
    fn tile_hash(&self, sim: &LithoSimulator<f64>, tile_target: &Grid<f64>) -> u64 {
        let fold = |h: u64, v: u64| (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        let base = resume::config_hash(&self.optimizer, sim, tile_target, None);
        let h = fold(base, self.core_px as u64);
        let h = fold(h, self.halo_px as u64);
        fold(h, self.warm_iterations() as u64)
    }

    /// Persists one completed tile under the checkpoint directory.
    /// A write failure degrades to a warning — the run's result does
    /// not depend on the checkpoint.
    fn persist_tile(
        &self,
        dir: &Path,
        tx: usize,
        ty: usize,
        hash: u64,
        warm: bool,
        result: &IltResult<f64>,
    ) {
        let tc = TileCheckpoint {
            hash,
            warm,
            iterations: result.iterations,
            coarse_iterations: result.coarse_iterations,
            mask: result.mask.clone(),
            levelset: result.levelset.clone(),
        };
        let path = dir.join(resume::tile_entry_name(tx, ty));
        match resume::write_tile_checkpoint(&path, &tc) {
            Ok(()) => lsopc_trace::count("checkpoint.write", 1),
            Err(e) => lsopc_trace::warn(
                "tiles",
                &format!("failed to write tile checkpoint {}: {e}", path.display()),
            ),
        }
    }

    /// Optimizes a (possibly large) target by tiles and stitches the
    /// result. Empty tiles are skipped. See
    /// [`TiledIlt::optimize_with_stats`] for the full contract.
    ///
    /// # Errors
    ///
    /// Returns [`TiledError`] when the target is not a multiple of the
    /// core size, or a tile fails to simulate/optimize.
    pub fn optimize(
        &self,
        optics: &OpticsConfig,
        target: &Grid<f64>,
        pixel_nm: f64,
    ) -> Result<Grid<f64>, TiledError> {
        self.optimize_with_stats(optics, target, pixel_nm)
            .map(|(mask, _)| mask)
    }

    /// [`TiledIlt::optimize`], also reporting per-run [`TiledStats`].
    ///
    /// Tiles are independent given the halo design and are optimized
    /// concurrently on the shared pool. The stitch (and the choice of
    /// which error is reported when several tiles fail) follows the
    /// deterministic row-major tile order, so the output never depends
    /// on which tile finished first.
    ///
    /// With a warm-start cache the run is two deterministic phases:
    /// every pattern's first occurrence (row-major) not already cached
    /// solves cold in phase one and is stored; phase two warm-starts the
    /// remaining tiles from the cache. Classification depends only on
    /// the tile contents and the cache state at entry — never on thread
    /// scheduling — so results are bit-identical across thread counts
    /// (pinned by `tests/parallel_tiles.rs`). Cold-phase failures are
    /// reported (first in row-major order) before warm-phase ones.
    ///
    /// With a [`RunControl`] attached (see
    /// [`TiledIlt::with_run_control`]) the run stops gracefully on
    /// cancellation or deadline — completed tiles keep their solved
    /// masks, interrupted tiles stitch best-so-far, untouched tiles
    /// fall back to the target pattern — and completed tiles persist
    /// to / restore from a per-tile checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns [`TiledError`] when the target is not a multiple of the
    /// core size, a tile fails to simulate/optimize, or the
    /// checkpoint/resume directory is unusable.
    pub fn optimize_with_stats(
        &self,
        optics: &OpticsConfig,
        target: &Grid<f64>,
        pixel_nm: f64,
    ) -> Result<(Grid<f64>, TiledStats), TiledError> {
        let (w, h) = target.dims();
        if w % self.core_px != 0 || h % self.core_px != 0 {
            return Err(TiledError::BadConfiguration(format!(
                "target {w}x{h} is not a multiple of the {}px core",
                self.core_px
            )));
        }
        let control = self.control.clone().unwrap_or_default();
        if control.iteration_budget.is_some() {
            return Err(TiledError::BadConfiguration(
                "iteration budgets are not supported for tiled runs \
                 (a global iteration count is not meaningful across concurrent tiles)"
                    .into(),
            ));
        }
        let tile = self.tile_px();
        // Each tile solve is serial (the fan-out is across tiles), hence
        // the 1-thread backend; rfft and cache handles forward to it
        // because the simulator is built here, out of the caller's reach.
        let mut backend = lsopc_litho::AcceleratedBackend::new(1);
        if let Some(rfft) = self.rfft {
            backend = backend.with_rfft(rfft);
        }
        let mut sim =
            LithoSimulator::from_optics(optics, tile, pixel_nm)?.with_backend(Box::new(backend));
        if let Some(caches) = &self.caches {
            sim = sim.with_caches(caches.clone());
        }
        // Warm the per-defocus kernel cache before fanning out so
        // concurrent tiles don't all generate the same kernels on a miss.
        let corners = sim.corners();
        for c in [corners.nominal, corners.inner, corners.outer] {
            let _ = sim.kernels_for(c.defocus_nm);
        }

        // Collect the non-empty tiles in row-major order.
        let mut tiles: Vec<(usize, usize, Grid<f64>)> = Vec::new();
        for ty in (0..h).step_by(self.core_px) {
            for tx in (0..w).step_by(self.core_px) {
                // Extract the tile with halo; outside the target is empty.
                let tile_target = Grid::from_fn(tile, tile, |x, y| {
                    let gx = tx as i64 + x as i64 - self.halo_px as i64;
                    let gy = ty as i64 + y as i64 - self.halo_px as i64;
                    if gx >= 0 && gy >= 0 && (gx as usize) < w && (gy as usize) < h {
                        target[(gx as usize, gy as usize)]
                    } else {
                        0.0
                    }
                });
                if tile_target.sum() == 0.0 {
                    continue; // nothing to optimize here
                }
                tiles.push((tx, ty, tile_target));
            }
        }

        let mut slots: Vec<Option<IltResult<f64>>> = (0..tiles.len()).map(|_| None).collect();
        let mut stats = TiledStats::default();

        // Per-tile checkpointing: the spec's path is a directory of one
        // file per completed tile.
        let ck_dir: Option<&Path> = control.checkpoint.as_ref().map(|s| s.path.as_path());
        if let Some(dir) = ck_dir {
            std::fs::create_dir_all(dir).map_err(|e| {
                TiledError::Checkpoint(format!(
                    "cannot create checkpoint directory {}: {e}",
                    dir.display()
                ))
            })?;
        }

        // Restore completed tiles before classification so that a
        // restored cold tile still seeds the warm-start cache for its
        // in-run repeats. Missing entries are normal (the previous run
        // was interrupted); corrupt or mismatched entries degrade to a
        // re-solve with a warning, never an error.
        if let Some(dir) = control.resume.as_ref() {
            if !dir.is_dir() {
                return Err(TiledError::Checkpoint(format!(
                    "resume path {} is not a tile checkpoint directory",
                    dir.display()
                )));
            }
            let _span = lsopc_trace::span!("tiles.phase.resume");
            for (i, (tx, ty, t)) in tiles.iter().enumerate() {
                let path = dir.join(resume::tile_entry_name(*tx, *ty));
                if !path.exists() {
                    continue;
                }
                let tc = match resume::load_tile_checkpoint(&path) {
                    Ok(tc) => tc,
                    Err(e) => {
                        lsopc_trace::warn(
                            "tiles",
                            &format!("ignoring tile checkpoint {}: {e}", path.display()),
                        );
                        continue;
                    }
                };
                if tc.hash != self.tile_hash(&sim, t) {
                    lsopc_trace::warn(
                        "tiles",
                        &format!(
                            "ignoring tile checkpoint {}: configuration or content changed",
                            path.display()
                        ),
                    );
                    continue;
                }
                if tc.mask.dims() != (tile, tile) || tc.levelset.dims() != (tile, tile) {
                    lsopc_trace::warn(
                        "tiles",
                        &format!(
                            "ignoring tile checkpoint {}: wrong dimensions",
                            path.display()
                        ),
                    );
                    continue;
                }
                if let Some(cache) = &self.warm_start {
                    if !tc.warm {
                        let fp = fingerprint(t).expect("non-empty tiles have fingerprints");
                        cache.store(&fp, &tc.levelset);
                    }
                }
                let result = IltResult {
                    mask: tc.mask,
                    levelset: tc.levelset,
                    history: Vec::new(),
                    iterations: tc.iterations,
                    coarse_iterations: tc.coarse_iterations,
                    converged: true,
                    runtime_s: 0.0,
                    snapshots: Vec::new(),
                    diagnostics: SolverDiagnostics::default(),
                    stopped: None,
                };
                stats.tally(&result, tc.warm);
                stats.resumed += 1;
                lsopc_trace::count("tiles.resume", 1);
                slots[i] = Some(result);
            }
        }

        // The effective cancel token: tile-internal stops (deadline
        // expiring mid-tile) are promoted into it so unclaimed tiles
        // drain instead of starting doomed solves.
        let token = control.cancel.clone().unwrap_or_default();
        let mut tile_control = RunControl::new().with_cancel(token.clone());
        if let Some(deadline) = control.deadline {
            tile_control = tile_control.with_deadline(deadline);
        }

        // Classify tiles by content, in row-major order so the choice of
        // each pattern's cold representative is deterministic. Restored
        // tiles participate in first-occurrence bookkeeping (their
        // pattern is already solved) but get no plan of their own.
        let plans: Vec<Option<PatternFingerprint>> = match &self.warm_start {
            None => vec![None; tiles.len()],
            Some(cache) => {
                let mut seen: HashSet<u64> = HashSet::new();
                tiles
                    .iter()
                    .enumerate()
                    .map(|(i, (_, _, t))| {
                        let fp = fingerprint(t).expect("non-empty tiles have fingerprints");
                        let first = seen.insert(fp.key());
                        if slots[i].is_some() {
                            return None;
                        }
                        let warm = if first {
                            // First occurrence: warm only on a cache hit
                            // from an earlier run (counts hit/miss).
                            cache.lookup(&fp).is_some()
                        } else {
                            // In-run repeat of a pattern being solved
                            // cold (or already warm) this run.
                            lsopc_trace::count("cache.warmstart.hit", 1);
                            true
                        };
                        if warm {
                            Some(fp)
                        } else {
                            None
                        }
                    })
                    .collect()
            }
        };

        // Phase one: cold tiles (everything unrestored, without a cache).
        let cold_idx: Vec<usize> = (0..tiles.len())
            .filter(|&i| slots[i].is_none() && plans[i].is_none())
            .collect();
        {
            let _span = lsopc_trace::span!("tiles.phase.cold");
            let results = self.ctx().par_map_cancellable(cold_idx.len(), &token, |j| {
                if let Some(reason) = tile_control.stop_requested(0) {
                    token.cancel(reason);
                }
                self.optimizer
                    .optimize_controlled(&sim, &tiles[cold_idx[j]].2, &tile_control)
            });
            for (&i, result) in cold_idx.iter().zip(results) {
                let Some(result) = result else {
                    stats.unfinished += 1;
                    continue;
                };
                let result = result?;
                if let Some(reason) = result.stopped {
                    token.cancel(reason);
                    stats.unfinished += 1;
                    slots[i] = Some(result);
                    continue;
                }
                if let Some(cache) = &self.warm_start {
                    let fp = fingerprint(&tiles[i].2).expect("non-empty tiles have fingerprints");
                    cache.store(&fp, &result.levelset);
                }
                if let Some(dir) = ck_dir {
                    let (tx, ty, t) = &tiles[i];
                    self.persist_tile(dir, *tx, *ty, self.tile_hash(&sim, t), false, &result);
                }
                stats.tally(&result, false);
                slots[i] = Some(result);
            }
        }

        // Phase two: warm tiles, refined from the cache that phase one
        // just completed. A cache entry that went missing (e.g. a
        // corrupt directory entry) degrades to a cold solve.
        let warm_idx: Vec<usize> = (0..tiles.len()).filter(|&i| plans[i].is_some()).collect();
        if !warm_idx.is_empty() {
            let _span = lsopc_trace::span!("tiles.phase.warm");
            let cache = self.warm_start.as_ref().expect("warm tiles imply a cache");
            let mut warm_opt = self.optimizer.clone();
            warm_opt.max_iterations = self.warm_iterations();
            let results = self.ctx().par_map_cancellable(warm_idx.len(), &token, |j| {
                if let Some(reason) = tile_control.stop_requested(0) {
                    token.cancel(reason);
                }
                let i = warm_idx[j];
                let fp = plans[i].as_ref().expect("warm plan");
                match cache.lookup_uncounted(fp) {
                    Some(psi0) => warm_opt
                        .optimize_from_controlled(&sim, &tiles[i].2, psi0, &tile_control)
                        .map(|r| (r, true)),
                    None => self
                        .optimizer
                        .optimize_controlled(&sim, &tiles[i].2, &tile_control)
                        .map(|r| (r, false)),
                }
            });
            for (&i, result) in warm_idx.iter().zip(results) {
                let Some(result) = result else {
                    stats.unfinished += 1;
                    continue;
                };
                let (result, warm) = result?;
                if let Some(reason) = result.stopped {
                    token.cancel(reason);
                    stats.unfinished += 1;
                    slots[i] = Some(result);
                    continue;
                }
                if let Some(dir) = ck_dir {
                    let (tx, ty, t) = &tiles[i];
                    self.persist_tile(dir, *tx, *ty, self.tile_hash(&sim, t), warm, &result);
                }
                stats.tally(&result, warm);
                slots[i] = Some(result);
            }
        }
        stats.stopped = token.cancelled();
        if let Some(reason) = stats.stopped {
            lsopc_trace::count(reason.counter_name(), 1);
        }

        // Stitch in row-major tile order. On a stopped run, tiles that
        // never produced a mask fall back to their target core — the
        // best-so-far output for an unstarted tile is the pattern
        // itself.
        let mut out = Grid::new(w, h, 0.0);
        for ((tx, ty, t), slot) in tiles.iter().zip(slots) {
            for y in 0..self.core_px {
                for x in 0..self.core_px {
                    let v = match &slot {
                        Some(result) => result.mask[(x + self.halo_px, y + self.halo_px)],
                        None => t[(x + self.halo_px, y + self.halo_px)],
                    };
                    out[(tx + x, ty + y)] = v;
                }
            }
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_litho::ProcessCondition;

    fn optics() -> OpticsConfig {
        OpticsConfig::iccad2013().with_kernel_count(4)
    }

    /// Two features in different tiles of a 256-px target.
    fn two_tile_target() -> Grid<f64> {
        Grid::from_fn(256, 256, |x, y| {
            let a = (40..60).contains(&x) && (30..90).contains(&y);
            let b = (180..200).contains(&x) && (160..220).contains(&y);
            if a || b {
                1.0
            } else {
                0.0
            }
        })
    }

    /// The same 20×56 feature twice in a 512-px target: once tucked in
    /// the top-left corner (visible only to tile (0,0)'s window) and
    /// once at +(256, 256), where the 2-tile-overlapping windows make it
    /// fully visible — as a pure translation — to four tiles. One
    /// pattern key, five non-empty tiles.
    fn repeated_tile_target() -> Grid<f64> {
        Grid::from_fn(512, 512, |x, y| {
            let a = (8..28).contains(&x) && (4..60).contains(&y);
            let b = (264..284).contains(&x) && (260..316).contains(&y);
            if a || b {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn tiled_mask_covers_both_features() {
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(6).build(), 128, 64)
            .expect("valid tiling");
        let target = two_tile_target();
        let mask = tiled.optimize(&optics(), &target, 4.0).expect("tiles run");
        assert_eq!(mask.dims(), (256, 256));
        // The mask prints both features.
        let sim = LithoSimulator::from_optics(&optics(), 256, 4.0)
            .expect("valid")
            .with_accelerated_backend(1);
        let printed = sim.print(&mask, ProcessCondition::NOMINAL);
        let (_, comps) = lsopc_geometry::label_components(&printed, 0.5);
        assert_eq!(comps.len(), 2, "both features must print");
    }

    #[test]
    fn tiled_matches_monolithic_for_isolated_features() {
        // With a halo covering the optical interaction range, tiling is
        // nearly transparent: the printed results agree.
        let opt = LevelSetIlt::builder().max_iterations(6).build();
        let target = two_tile_target();
        let tiled_mask = TiledIlt::new(opt.clone(), 128, 64)
            .expect("valid tiling")
            .optimize(&optics(), &target, 4.0)
            .expect("tiles run");
        let sim = LithoSimulator::from_optics(&optics(), 256, 4.0)
            .expect("valid")
            .with_accelerated_backend(1);
        let mono = opt.optimize(&sim, &target).expect("monolithic runs");
        let p_tiled = sim.print(&tiled_mask, ProcessCondition::NOMINAL);
        let p_mono = sim.print(&mono.mask, ProcessCondition::NOMINAL);
        // Printed images agree except a small fraction of pixels.
        let differing = p_tiled
            .as_slice()
            .iter()
            .zip(p_mono.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            differing < 256 * 256 / 200,
            "tiled and monolithic prints differ on {differing} px"
        );
    }

    #[test]
    fn empty_tiles_are_skipped_cheaply() {
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(4).build(), 128, 64)
            .expect("valid tiling");
        let target = Grid::from_fn(512, 512, |x, y| {
            if (40..60).contains(&x) && (30..90).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let start = std::time::Instant::now();
        let mask = tiled.optimize(&optics(), &target, 4.0).expect("tiles run");
        let with_empty = start.elapsed();
        assert!(mask.sum() > 0.0);
        // 15 of 16 tiles are empty; the run must be much faster than 16
        // tile optimizations (loose sanity bound: under 16x one tile).
        assert!(with_empty.as_secs_f64() < 30.0);
    }

    #[test]
    fn rejects_misaligned_target() {
        let tiled = TiledIlt::new(LevelSetIlt::default(), 128, 64).expect("valid tiling");
        let target = Grid::new(200, 200, 1.0);
        let err = tiled
            .optimize(&optics(), &target, 4.0)
            .expect_err("misaligned");
        assert!(matches!(err, TiledError::BadConfiguration(_)));
        assert!(err.to_string().contains("multiple"));
    }

    #[test]
    fn rejects_degenerate_tile_geometry() {
        for (core, halo, needle) in [
            (0usize, 0usize, "positive"),
            (100, 10, "power of two"),
            (128, 128, "smaller than"),
            (64, 96, "smaller than"),
            (usize::MAX - 1, 4, "overflow"),
        ] {
            let err = TiledIlt::new(LevelSetIlt::default(), core, halo)
                .err()
                .unwrap_or_else(|| panic!("core {core} halo {halo} must be rejected"));
            assert!(matches!(err, TiledError::BadConfiguration(_)));
            assert!(
                err.to_string().contains(needle),
                "core {core} halo {halo}: got {err}"
            );
        }
    }

    #[test]
    fn accepts_the_standard_geometry() {
        let tiled = TiledIlt::new(LevelSetIlt::default(), 128, 64).expect("128+2·64=256 is valid");
        assert_eq!(tiled.tile_px(), 256);
    }

    #[test]
    fn warm_start_reuses_repeated_tiles() {
        let opt = LevelSetIlt::builder().max_iterations(8).build();
        let cache = WarmStartCache::in_memory();
        let tiled = TiledIlt::new(opt, 128, 64)
            .expect("valid tiling")
            .with_warm_start(cache.clone());
        let (mask, stats) = tiled
            .optimize_with_stats(&optics(), &repeated_tile_target(), 4.0)
            .expect("tiles run");
        assert!(mask.sum() > 0.0);
        assert_eq!(stats.tiles, 5);
        assert_eq!(stats.cold, 1, "one representative solves cold");
        assert_eq!(stats.warm, 4, "every repeat warm-starts");
        assert_eq!(cache.len(), 1, "one pattern cached");
        let per_warm = stats.warm_full_iterations as f64 / stats.warm as f64;
        let per_cold = stats.cold_full_iterations as f64 / stats.cold as f64;
        assert!(
            per_warm < per_cold,
            "warm tiles averaged {per_warm} iterations vs cold {per_cold}"
        );
    }

    #[test]
    fn warm_start_second_run_is_all_hits() {
        let cache = WarmStartCache::in_memory();
        let make = || {
            TiledIlt::new(LevelSetIlt::builder().max_iterations(6).build(), 128, 64)
                .expect("valid tiling")
                .with_warm_start(cache.clone())
        };
        let (first_mask, first) = make()
            .optimize_with_stats(&optics(), &repeated_tile_target(), 4.0)
            .expect("first run");
        assert_eq!((first.cold, first.warm), (1, 4));
        let (second_mask, second) = make()
            .optimize_with_stats(&optics(), &repeated_tile_target(), 4.0)
            .expect("second run");
        assert_eq!((second.cold, second.warm), (0, 5), "all cached now");
        // The second run warm-starts from the first run's refined ψ, so
        // the masks need not be identical — but both must print.
        assert!(first_mask.sum() > 0.0 && second_mask.sum() > 0.0);
    }

    #[test]
    fn tile_checkpoints_restore_bit_identically() {
        let dir = std::env::temp_dir().join(format!("lsopc_tiles_ck_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opt = LevelSetIlt::builder().max_iterations(5).build();
        let make = || TiledIlt::new(opt.clone(), 128, 64).expect("valid tiling");
        let spec = crate::CheckpointSpec::new(&dir, 1);
        let (first_mask, first) = make()
            .with_run_control(RunControl::new().with_checkpoint(spec))
            .optimize_with_stats(&optics(), &two_tile_target(), 4.0)
            .expect("first run");
        assert_eq!(first.resumed, 0);
        let (second_mask, second) = make()
            .with_run_control(RunControl::new().with_resume(&dir))
            .optimize_with_stats(&optics(), &two_tile_target(), 4.0)
            .expect("resumed run");
        assert_eq!(second.resumed, first.tiles, "every tile restores");
        assert_eq!(second.tiles, first.tiles);
        assert_eq!(second.full_iterations(), first.full_iterations());
        assert_eq!(first_mask, second_mask, "restored stitch is bit-identical");

        // A configuration change invalidates the stored tiles.
        let other = LevelSetIlt::builder().max_iterations(6).build();
        let (_, third) = TiledIlt::new(other, 128, 64)
            .expect("valid tiling")
            .with_run_control(RunControl::new().with_resume(&dir))
            .optimize_with_stats(&optics(), &two_tile_target(), 4.0)
            .expect("mismatched resume still runs");
        assert_eq!(third.resumed, 0, "hash mismatch re-solves every tile");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelled_run_stops_gracefully_with_target_fallback() {
        let token = crate::CancelToken::new();
        token.cancel(crate::StopReason::External);
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(5).build(), 128, 64)
            .expect("valid tiling")
            .with_run_control(RunControl::new().with_cancel(token));
        let target = two_tile_target();
        let (mask, stats) = tiled
            .optimize_with_stats(&optics(), &target, 4.0)
            .expect("cancelled run is not an error");
        assert_eq!(stats.stopped, Some(crate::StopReason::External));
        assert_eq!(stats.tiles, 0);
        // Every halo window of this target sees some pattern, so all
        // four tile positions are non-empty — and all go unsolved.
        assert_eq!(stats.unfinished, 4);
        assert_eq!(mask, target, "unsolved tiles fall back to the target");
    }

    #[test]
    fn rejects_iteration_budget() {
        let tiled = TiledIlt::new(LevelSetIlt::default(), 128, 64)
            .expect("valid tiling")
            .with_run_control(RunControl::new().with_iteration_budget(3));
        let err = tiled
            .optimize(&optics(), &two_tile_target(), 4.0)
            .expect_err("budget must be rejected");
        assert!(matches!(err, TiledError::BadConfiguration(_)));
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn rejects_file_as_resume_directory() {
        let path = std::env::temp_dir().join(format!("lsopc_tiles_file_{}", std::process::id()));
        std::fs::write(&path, b"not a directory").expect("write");
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(4).build(), 128, 64)
            .expect("valid tiling")
            .with_run_control(RunControl::new().with_resume(&path));
        let err = tiled
            .optimize(&optics(), &two_tile_target(), 4.0)
            .expect_err("file is not a resume directory");
        assert!(matches!(err, TiledError::Checkpoint(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_start_off_matches_warm_start_free_run() {
        // Without a cache attached, the stats-reporting path is the
        // plain cold path.
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(5).build(), 128, 64)
            .expect("valid tiling");
        let target = two_tile_target();
        let plain = tiled.optimize(&optics(), &target, 4.0).expect("runs");
        let (with_stats, stats) = tiled
            .optimize_with_stats(&optics(), &target, 4.0)
            .expect("runs");
        assert_eq!(plain, with_stats);
        assert_eq!(stats.warm, 0);
        assert_eq!(stats.cold, stats.tiles);
        assert_eq!(stats.coarse_iterations, 0);
    }
}
