//! Tile-partitioned optimization for large fields.
//!
//! Full-chip ILT never optimizes one giant grid: the layout is cut into
//! tiles with an optical-interaction halo, each tile is optimized
//! independently (embarrassingly parallel in production), and the tile
//! cores are stitched back together. The optical interaction range of the
//! 193 nm / NA 1.35 system is a few hundred nanometres, so a halo of
//! ~128 nm already isolates tiles to high accuracy.
//!
//! This module implements that flow on top of [`LevelSetIlt`]; it is an
//! extension beyond the paper (whose benchmarks are single tiles by
//! construction).

use crate::{LevelSetIlt, OptimizeError};
use lsopc_grid::Grid;
use lsopc_litho::{BuildSimulatorError, LithoSimulator};
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;
use std::error::Error;
use std::fmt;

/// Error from tiled optimization.
#[derive(Debug)]
pub enum TiledError {
    /// The tile/halo configuration is invalid for the target grid.
    BadConfiguration(String),
    /// Building a tile simulator failed.
    Simulator(BuildSimulatorError),
    /// A tile optimization failed.
    Optimize(OptimizeError),
}

impl fmt::Display for TiledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfiguration(msg) => write!(f, "bad tile configuration: {msg}"),
            Self::Simulator(e) => write!(f, "tile simulator: {e}"),
            Self::Optimize(e) => write!(f, "tile optimization: {e}"),
        }
    }
}

impl Error for TiledError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::BadConfiguration(_) => None,
            Self::Simulator(e) => Some(e),
            Self::Optimize(e) => Some(e),
        }
    }
}

impl From<BuildSimulatorError> for TiledError {
    fn from(e: BuildSimulatorError) -> Self {
        Self::Simulator(e)
    }
}

impl From<OptimizeError> for TiledError {
    fn from(e: OptimizeError) -> Self {
        Self::Optimize(e)
    }
}

/// Tile-partitioned level-set ILT.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_core::{LevelSetIlt, TiledIlt};
/// use lsopc_grid::Grid;
/// use lsopc_optics::OpticsConfig;
///
/// let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(20).build(), 128, 64);
/// let target = Grid::new(512, 512, 0.0);
/// let mask = tiled.optimize(&OpticsConfig::iccad2013(), &target, 4.0)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TiledIlt {
    optimizer: LevelSetIlt,
    core_px: usize,
    halo_px: usize,
    /// `None` → [`ParallelContext::global`].
    ctx: Option<ParallelContext>,
}

impl TiledIlt {
    /// Creates a tiled optimizer: tiles of `core_px` pixels, extended by
    /// `halo_px` of context on every side (`core + 2·halo` must be a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `core_px` is zero or `core_px + 2·halo_px` is not a
    /// power of two.
    pub fn new(optimizer: LevelSetIlt, core_px: usize, halo_px: usize) -> Self {
        assert!(core_px > 0, "core size must be positive");
        assert!(
            (core_px + 2 * halo_px).is_power_of_two(),
            "core + 2·halo = {} must be a power of two",
            core_px + 2 * halo_px
        );
        Self {
            optimizer,
            core_px,
            halo_px,
            ctx: None,
        }
    }

    /// Runs tile optimizations on an explicit [`ParallelContext`] instead
    /// of the process-global one (tests and thread-count sweeps).
    pub fn with_context(mut self, ctx: ParallelContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    fn ctx(&self) -> &ParallelContext {
        self.ctx
            .as_ref()
            .unwrap_or_else(|| ParallelContext::global())
    }

    /// Tile size including halo.
    pub fn tile_px(&self) -> usize {
        self.core_px + 2 * self.halo_px
    }

    /// Optimizes a (possibly large) target by tiles and stitches the
    /// result. Empty tiles are skipped.
    ///
    /// Tiles are independent given the halo design and are optimized
    /// concurrently on the shared pool. The stitch (and the choice of
    /// which error is reported when several tiles fail) follows the
    /// deterministic row-major tile order, so the output never depends on
    /// which tile finished first.
    ///
    /// # Errors
    ///
    /// Returns [`TiledError`] when the target is not a multiple of the
    /// core size, or a tile fails to simulate/optimize.
    pub fn optimize(
        &self,
        optics: &OpticsConfig,
        target: &Grid<f64>,
        pixel_nm: f64,
    ) -> Result<Grid<f64>, TiledError> {
        let (w, h) = target.dims();
        if w % self.core_px != 0 || h % self.core_px != 0 {
            return Err(TiledError::BadConfiguration(format!(
                "target {w}x{h} is not a multiple of the {}px core",
                self.core_px
            )));
        }
        let tile = self.tile_px();
        let sim = LithoSimulator::from_optics(optics, tile, pixel_nm)?.with_accelerated_backend(1);
        // Warm the per-defocus kernel cache before fanning out so
        // concurrent tiles don't all generate the same kernels on a miss.
        let corners = sim.corners();
        for c in [corners.nominal, corners.inner, corners.outer] {
            let _ = sim.kernels_for(c.defocus_nm);
        }

        // Collect the non-empty tiles in row-major order.
        let mut tiles: Vec<(usize, usize, Grid<f64>)> = Vec::new();
        for ty in (0..h).step_by(self.core_px) {
            for tx in (0..w).step_by(self.core_px) {
                // Extract the tile with halo; outside the target is empty.
                let tile_target = Grid::from_fn(tile, tile, |x, y| {
                    let gx = tx as i64 + x as i64 - self.halo_px as i64;
                    let gy = ty as i64 + y as i64 - self.halo_px as i64;
                    if gx >= 0 && gy >= 0 && (gx as usize) < w && (gy as usize) < h {
                        target[(gx as usize, gy as usize)]
                    } else {
                        0.0
                    }
                });
                if tile_target.sum() == 0.0 {
                    continue; // nothing to optimize here
                }
                tiles.push((tx, ty, tile_target));
            }
        }

        let results = self
            .ctx()
            .par_map(tiles.len(), |i| self.optimizer.optimize(&sim, &tiles[i].2));

        // Stitch in row-major tile order; the first failing tile in that
        // order wins, independent of scheduling.
        let mut out = Grid::new(w, h, 0.0);
        for (&(tx, ty, _), result) in tiles.iter().zip(results) {
            let result = result?;
            // Paste the core region.
            for y in 0..self.core_px {
                for x in 0..self.core_px {
                    out[(tx + x, ty + y)] = result.mask[(x + self.halo_px, y + self.halo_px)];
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_litho::ProcessCondition;

    fn optics() -> OpticsConfig {
        OpticsConfig::iccad2013().with_kernel_count(4)
    }

    /// Two features in different tiles of a 256-px target.
    fn two_tile_target() -> Grid<f64> {
        Grid::from_fn(256, 256, |x, y| {
            let a = (40..60).contains(&x) && (30..90).contains(&y);
            let b = (180..200).contains(&x) && (160..220).contains(&y);
            if a || b {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn tiled_mask_covers_both_features() {
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(6).build(), 128, 64);
        let target = two_tile_target();
        let mask = tiled.optimize(&optics(), &target, 4.0).expect("tiles run");
        assert_eq!(mask.dims(), (256, 256));
        // The mask prints both features.
        let sim = LithoSimulator::from_optics(&optics(), 256, 4.0)
            .expect("valid")
            .with_accelerated_backend(1);
        let printed = sim.print(&mask, ProcessCondition::NOMINAL);
        let (_, comps) = lsopc_geometry::label_components(&printed, 0.5);
        assert_eq!(comps.len(), 2, "both features must print");
    }

    #[test]
    fn tiled_matches_monolithic_for_isolated_features() {
        // With a halo covering the optical interaction range, tiling is
        // nearly transparent: the printed results agree.
        let opt = LevelSetIlt::builder().max_iterations(6).build();
        let target = two_tile_target();
        let tiled_mask = TiledIlt::new(opt.clone(), 128, 64)
            .optimize(&optics(), &target, 4.0)
            .expect("tiles run");
        let sim = LithoSimulator::from_optics(&optics(), 256, 4.0)
            .expect("valid")
            .with_accelerated_backend(1);
        let mono = opt.optimize(&sim, &target).expect("monolithic runs");
        let p_tiled = sim.print(&tiled_mask, ProcessCondition::NOMINAL);
        let p_mono = sim.print(&mono.mask, ProcessCondition::NOMINAL);
        // Printed images agree except a small fraction of pixels.
        let differing = p_tiled
            .as_slice()
            .iter()
            .zip(p_mono.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            differing < 256 * 256 / 200,
            "tiled and monolithic prints differ on {differing} px"
        );
    }

    #[test]
    fn empty_tiles_are_skipped_cheaply() {
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(4).build(), 128, 64);
        let target = Grid::from_fn(512, 512, |x, y| {
            if (40..60).contains(&x) && (30..90).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let start = std::time::Instant::now();
        let mask = tiled.optimize(&optics(), &target, 4.0).expect("tiles run");
        let with_empty = start.elapsed();
        assert!(mask.sum() > 0.0);
        // 15 of 16 tiles are empty; the run must be much faster than 16
        // tile optimizations (loose sanity bound: under 16x one tile).
        assert!(with_empty.as_secs_f64() < 30.0);
    }

    #[test]
    fn rejects_misaligned_target() {
        let tiled = TiledIlt::new(LevelSetIlt::default(), 128, 64);
        let target = Grid::new(200, 200, 1.0);
        let err = tiled
            .optimize(&optics(), &target, 4.0)
            .expect_err("misaligned");
        assert!(matches!(err, TiledError::BadConfiguration(_)));
        assert!(err.to_string().contains("multiple"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_tile() {
        let _ = TiledIlt::new(LevelSetIlt::default(), 100, 10);
    }
}
