//! Tile-partitioned optimization for large fields.
//!
//! Full-chip ILT never optimizes one giant grid: the layout is cut into
//! tiles with an optical-interaction halo, each tile is optimized
//! independently (embarrassingly parallel in production), and the tile
//! cores are stitched back together. The optical interaction range of the
//! 193 nm / NA 1.35 system is a few hundred nanometres, so a halo of
//! ~128 nm already isolates tiles to high accuracy.
//!
//! This module implements that flow on top of [`LevelSetIlt`]; it is an
//! extension beyond the paper (whose benchmarks are single tiles by
//! construction). With a [`WarmStartCache`] attached, repeated tile
//! patterns are recognized by content (translation-invariant
//! fingerprints) and solved with a short warm refinement from the cached
//! ψ instead of a full cold run — see DESIGN.md §14.

use crate::warmstart::{fingerprint, PatternFingerprint, WarmStartCache};
use crate::{IltResult, LevelSetIlt, OptimizeError};
use lsopc_grid::Grid;
use lsopc_litho::{BuildSimulatorError, LithoSimulator};
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Error from tiled optimization.
#[derive(Debug)]
pub enum TiledError {
    /// The tile/halo configuration is invalid for the target grid.
    BadConfiguration(String),
    /// Building a tile simulator failed.
    Simulator(BuildSimulatorError),
    /// A tile optimization failed.
    Optimize(OptimizeError),
}

impl fmt::Display for TiledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfiguration(msg) => write!(f, "bad tile configuration: {msg}"),
            Self::Simulator(e) => write!(f, "tile simulator: {e}"),
            Self::Optimize(e) => write!(f, "tile optimization: {e}"),
        }
    }
}

impl Error for TiledError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::BadConfiguration(_) => None,
            Self::Simulator(e) => Some(e),
            Self::Optimize(e) => Some(e),
        }
    }
}

impl From<BuildSimulatorError> for TiledError {
    fn from(e: BuildSimulatorError) -> Self {
        Self::Simulator(e)
    }
}

impl From<OptimizeError> for TiledError {
    fn from(e: OptimizeError) -> Self {
        Self::Optimize(e)
    }
}

/// What a tiled run did: tile counts and iteration totals, split by
/// whether the tile solved cold (full run from the target's signed
/// distance) or warm (short refinement from a cached ψ).
///
/// "Full" iterations are full-resolution ones — with a
/// [`ResolutionSchedule`](crate::ResolutionSchedule) on the tile
/// optimizer, coarse-stage iterations are tallied separately.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TiledStats {
    /// Non-empty tiles optimized.
    pub tiles: usize,
    /// Tiles solved cold.
    pub cold: usize,
    /// Tiles warm-started from the cache.
    pub warm: usize,
    /// Full-resolution iterations spent on cold tiles.
    pub cold_full_iterations: usize,
    /// Full-resolution iterations spent on warm tiles.
    pub warm_full_iterations: usize,
    /// Coarse-stage iterations across all tiles (0 without a schedule).
    pub coarse_iterations: usize,
}

impl TiledStats {
    /// Total full-resolution iterations across all tiles.
    pub fn full_iterations(&self) -> usize {
        self.cold_full_iterations + self.warm_full_iterations
    }

    fn tally(&mut self, result: &IltResult<f64>, warm: bool) {
        self.tiles += 1;
        let full = result.iterations - result.coarse_iterations;
        self.coarse_iterations += result.coarse_iterations;
        if warm {
            self.warm += 1;
            self.warm_full_iterations += full;
        } else {
            self.cold += 1;
            self.cold_full_iterations += full;
        }
    }
}

/// Tile-partitioned level-set ILT.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_core::{LevelSetIlt, TiledIlt};
/// use lsopc_grid::Grid;
/// use lsopc_optics::OpticsConfig;
///
/// let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(20).build(), 128, 64)?;
/// let target = Grid::new(512, 512, 0.0);
/// let mask = tiled.optimize(&OpticsConfig::iccad2013(), &target, 4.0)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TiledIlt {
    optimizer: LevelSetIlt,
    core_px: usize,
    halo_px: usize,
    warm_start: Option<WarmStartCache>,
    warm_iterations: Option<usize>,
    /// `None` → [`ParallelContext::global`].
    ctx: Option<ParallelContext>,
}

impl TiledIlt {
    /// Creates a tiled optimizer: tiles of `core_px` pixels, extended by
    /// `halo_px` of context on every side (`core + 2·halo` must be a
    /// power of two).
    ///
    /// # Errors
    ///
    /// Returns [`TiledError::BadConfiguration`] when the geometry is
    /// degenerate: a zero core, a halo at least as large as the core
    /// (the "core" would be mostly duplicated context), an overflowing
    /// tile size, or a tile that is not a power of two (FFT
    /// requirement).
    pub fn new(optimizer: LevelSetIlt, core_px: usize, halo_px: usize) -> Result<Self, TiledError> {
        let bad = |msg: String| Err(TiledError::BadConfiguration(msg));
        if core_px == 0 {
            return bad("core size must be positive".into());
        }
        if halo_px >= core_px {
            return bad(format!(
                "halo {halo_px}px must be smaller than the {core_px}px core"
            ));
        }
        let Some(tile) = halo_px
            .checked_mul(2)
            .and_then(|h2| core_px.checked_add(h2))
        else {
            return bad(format!("tile size {core_px} + 2·{halo_px} overflows"));
        };
        if !tile.is_power_of_two() {
            return bad(format!("core + 2·halo = {tile} must be a power of two"));
        }
        Ok(Self {
            optimizer,
            core_px,
            halo_px,
            warm_start: None,
            warm_iterations: None,
            ctx: None,
        })
    }

    /// Attaches a [`WarmStartCache`]: tiles whose pattern (up to
    /// whole-pixel translation) is already cached — from an earlier run
    /// via a shared/directory cache, or from an earlier tile of this run
    /// — skip the cold solve and run a short refinement from the cached
    /// ψ.
    pub fn with_warm_start(mut self, cache: WarmStartCache) -> Self {
        self.warm_start = Some(cache);
        self
    }

    /// Overrides the warm-tile refinement budget (default: a quarter of
    /// the optimizer's `max_iterations`, at least 2).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_warm_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "warm iteration budget must be positive");
        self.warm_iterations = Some(iterations);
        self
    }

    /// Runs tile optimizations on an explicit [`ParallelContext`] instead
    /// of the process-global one (tests and thread-count sweeps).
    pub fn with_context(mut self, ctx: ParallelContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    fn ctx(&self) -> &ParallelContext {
        self.ctx
            .as_ref()
            .unwrap_or_else(|| ParallelContext::global())
    }

    /// Tile size including halo.
    pub fn tile_px(&self) -> usize {
        self.core_px + 2 * self.halo_px
    }

    /// The warm-tile refinement budget in effect.
    pub fn warm_iterations(&self) -> usize {
        self.warm_iterations
            .unwrap_or_else(|| (self.optimizer.max_iterations / 4).max(2))
    }

    /// Optimizes a (possibly large) target by tiles and stitches the
    /// result. Empty tiles are skipped. See
    /// [`TiledIlt::optimize_with_stats`] for the full contract.
    ///
    /// # Errors
    ///
    /// Returns [`TiledError`] when the target is not a multiple of the
    /// core size, or a tile fails to simulate/optimize.
    pub fn optimize(
        &self,
        optics: &OpticsConfig,
        target: &Grid<f64>,
        pixel_nm: f64,
    ) -> Result<Grid<f64>, TiledError> {
        self.optimize_with_stats(optics, target, pixel_nm)
            .map(|(mask, _)| mask)
    }

    /// [`TiledIlt::optimize`], also reporting per-run [`TiledStats`].
    ///
    /// Tiles are independent given the halo design and are optimized
    /// concurrently on the shared pool. The stitch (and the choice of
    /// which error is reported when several tiles fail) follows the
    /// deterministic row-major tile order, so the output never depends
    /// on which tile finished first.
    ///
    /// With a warm-start cache the run is two deterministic phases:
    /// every pattern's first occurrence (row-major) not already cached
    /// solves cold in phase one and is stored; phase two warm-starts the
    /// remaining tiles from the cache. Classification depends only on
    /// the tile contents and the cache state at entry — never on thread
    /// scheduling — so results are bit-identical across thread counts
    /// (pinned by `tests/parallel_tiles.rs`). Cold-phase failures are
    /// reported (first in row-major order) before warm-phase ones.
    ///
    /// # Errors
    ///
    /// Returns [`TiledError`] when the target is not a multiple of the
    /// core size, or a tile fails to simulate/optimize.
    pub fn optimize_with_stats(
        &self,
        optics: &OpticsConfig,
        target: &Grid<f64>,
        pixel_nm: f64,
    ) -> Result<(Grid<f64>, TiledStats), TiledError> {
        let (w, h) = target.dims();
        if w % self.core_px != 0 || h % self.core_px != 0 {
            return Err(TiledError::BadConfiguration(format!(
                "target {w}x{h} is not a multiple of the {}px core",
                self.core_px
            )));
        }
        let tile = self.tile_px();
        let sim = LithoSimulator::from_optics(optics, tile, pixel_nm)?.with_accelerated_backend(1);
        // Warm the per-defocus kernel cache before fanning out so
        // concurrent tiles don't all generate the same kernels on a miss.
        let corners = sim.corners();
        for c in [corners.nominal, corners.inner, corners.outer] {
            let _ = sim.kernels_for(c.defocus_nm);
        }

        // Collect the non-empty tiles in row-major order.
        let mut tiles: Vec<(usize, usize, Grid<f64>)> = Vec::new();
        for ty in (0..h).step_by(self.core_px) {
            for tx in (0..w).step_by(self.core_px) {
                // Extract the tile with halo; outside the target is empty.
                let tile_target = Grid::from_fn(tile, tile, |x, y| {
                    let gx = tx as i64 + x as i64 - self.halo_px as i64;
                    let gy = ty as i64 + y as i64 - self.halo_px as i64;
                    if gx >= 0 && gy >= 0 && (gx as usize) < w && (gy as usize) < h {
                        target[(gx as usize, gy as usize)]
                    } else {
                        0.0
                    }
                });
                if tile_target.sum() == 0.0 {
                    continue; // nothing to optimize here
                }
                tiles.push((tx, ty, tile_target));
            }
        }

        // Classify tiles by content, in row-major order so the choice of
        // each pattern's cold representative is deterministic.
        let plans: Vec<Option<PatternFingerprint>> = match &self.warm_start {
            None => vec![None; tiles.len()],
            Some(cache) => {
                let mut seen: HashSet<u64> = HashSet::new();
                tiles
                    .iter()
                    .map(|(_, _, t)| {
                        let fp = fingerprint(t).expect("non-empty tiles have fingerprints");
                        let warm = if seen.insert(fp.key()) {
                            // First occurrence: warm only on a cache hit
                            // from an earlier run (counts hit/miss).
                            cache.lookup(&fp).is_some()
                        } else {
                            // In-run repeat of a pattern being solved
                            // cold (or already warm) this run.
                            lsopc_trace::count("cache.warmstart.hit", 1);
                            true
                        };
                        if warm {
                            Some(fp)
                        } else {
                            None
                        }
                    })
                    .collect()
            }
        };

        let mut slots: Vec<Option<IltResult<f64>>> = (0..tiles.len()).map(|_| None).collect();
        let mut stats = TiledStats::default();

        // Phase one: cold tiles (everything, without a cache).
        let cold_idx: Vec<usize> = (0..tiles.len()).filter(|&i| plans[i].is_none()).collect();
        {
            let _span = lsopc_trace::span!("tiles.phase.cold");
            let results = self.ctx().par_map(cold_idx.len(), |j| {
                self.optimizer.optimize(&sim, &tiles[cold_idx[j]].2)
            });
            for (&i, result) in cold_idx.iter().zip(results) {
                let result = result?;
                if let Some(cache) = &self.warm_start {
                    let fp = fingerprint(&tiles[i].2).expect("non-empty tiles have fingerprints");
                    cache.store(&fp, &result.levelset);
                }
                stats.tally(&result, false);
                slots[i] = Some(result);
            }
        }

        // Phase two: warm tiles, refined from the cache that phase one
        // just completed. A cache entry that went missing (e.g. a
        // corrupt directory entry) degrades to a cold solve.
        let warm_idx: Vec<usize> = (0..tiles.len()).filter(|&i| plans[i].is_some()).collect();
        if !warm_idx.is_empty() {
            let _span = lsopc_trace::span!("tiles.phase.warm");
            let cache = self.warm_start.as_ref().expect("warm tiles imply a cache");
            let mut warm_opt = self.optimizer.clone();
            warm_opt.max_iterations = self.warm_iterations();
            let results = self.ctx().par_map(warm_idx.len(), |j| {
                let i = warm_idx[j];
                let fp = plans[i].as_ref().expect("warm plan");
                match cache.lookup_uncounted(fp) {
                    Some(psi0) => warm_opt
                        .optimize_from(&sim, &tiles[i].2, psi0)
                        .map(|r| (r, true)),
                    None => self
                        .optimizer
                        .optimize(&sim, &tiles[i].2)
                        .map(|r| (r, false)),
                }
            });
            for (&i, result) in warm_idx.iter().zip(results) {
                let (result, warm) = result?;
                stats.tally(&result, warm);
                slots[i] = Some(result);
            }
        }

        // Stitch in row-major tile order.
        let mut out = Grid::new(w, h, 0.0);
        for (&(tx, ty, _), slot) in tiles.iter().zip(slots) {
            let result = slot.expect("every non-empty tile was solved");
            // Paste the core region.
            for y in 0..self.core_px {
                for x in 0..self.core_px {
                    out[(tx + x, ty + y)] = result.mask[(x + self.halo_px, y + self.halo_px)];
                }
            }
        }
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_litho::ProcessCondition;

    fn optics() -> OpticsConfig {
        OpticsConfig::iccad2013().with_kernel_count(4)
    }

    /// Two features in different tiles of a 256-px target.
    fn two_tile_target() -> Grid<f64> {
        Grid::from_fn(256, 256, |x, y| {
            let a = (40..60).contains(&x) && (30..90).contains(&y);
            let b = (180..200).contains(&x) && (160..220).contains(&y);
            if a || b {
                1.0
            } else {
                0.0
            }
        })
    }

    /// The same 20×56 feature twice in a 512-px target: once tucked in
    /// the top-left corner (visible only to tile (0,0)'s window) and
    /// once at +(256, 256), where the 2-tile-overlapping windows make it
    /// fully visible — as a pure translation — to four tiles. One
    /// pattern key, five non-empty tiles.
    fn repeated_tile_target() -> Grid<f64> {
        Grid::from_fn(512, 512, |x, y| {
            let a = (8..28).contains(&x) && (4..60).contains(&y);
            let b = (264..284).contains(&x) && (260..316).contains(&y);
            if a || b {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn tiled_mask_covers_both_features() {
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(6).build(), 128, 64)
            .expect("valid tiling");
        let target = two_tile_target();
        let mask = tiled.optimize(&optics(), &target, 4.0).expect("tiles run");
        assert_eq!(mask.dims(), (256, 256));
        // The mask prints both features.
        let sim = LithoSimulator::from_optics(&optics(), 256, 4.0)
            .expect("valid")
            .with_accelerated_backend(1);
        let printed = sim.print(&mask, ProcessCondition::NOMINAL);
        let (_, comps) = lsopc_geometry::label_components(&printed, 0.5);
        assert_eq!(comps.len(), 2, "both features must print");
    }

    #[test]
    fn tiled_matches_monolithic_for_isolated_features() {
        // With a halo covering the optical interaction range, tiling is
        // nearly transparent: the printed results agree.
        let opt = LevelSetIlt::builder().max_iterations(6).build();
        let target = two_tile_target();
        let tiled_mask = TiledIlt::new(opt.clone(), 128, 64)
            .expect("valid tiling")
            .optimize(&optics(), &target, 4.0)
            .expect("tiles run");
        let sim = LithoSimulator::from_optics(&optics(), 256, 4.0)
            .expect("valid")
            .with_accelerated_backend(1);
        let mono = opt.optimize(&sim, &target).expect("monolithic runs");
        let p_tiled = sim.print(&tiled_mask, ProcessCondition::NOMINAL);
        let p_mono = sim.print(&mono.mask, ProcessCondition::NOMINAL);
        // Printed images agree except a small fraction of pixels.
        let differing = p_tiled
            .as_slice()
            .iter()
            .zip(p_mono.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            differing < 256 * 256 / 200,
            "tiled and monolithic prints differ on {differing} px"
        );
    }

    #[test]
    fn empty_tiles_are_skipped_cheaply() {
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(4).build(), 128, 64)
            .expect("valid tiling");
        let target = Grid::from_fn(512, 512, |x, y| {
            if (40..60).contains(&x) && (30..90).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let start = std::time::Instant::now();
        let mask = tiled.optimize(&optics(), &target, 4.0).expect("tiles run");
        let with_empty = start.elapsed();
        assert!(mask.sum() > 0.0);
        // 15 of 16 tiles are empty; the run must be much faster than 16
        // tile optimizations (loose sanity bound: under 16x one tile).
        assert!(with_empty.as_secs_f64() < 30.0);
    }

    #[test]
    fn rejects_misaligned_target() {
        let tiled = TiledIlt::new(LevelSetIlt::default(), 128, 64).expect("valid tiling");
        let target = Grid::new(200, 200, 1.0);
        let err = tiled
            .optimize(&optics(), &target, 4.0)
            .expect_err("misaligned");
        assert!(matches!(err, TiledError::BadConfiguration(_)));
        assert!(err.to_string().contains("multiple"));
    }

    #[test]
    fn rejects_degenerate_tile_geometry() {
        for (core, halo, needle) in [
            (0usize, 0usize, "positive"),
            (100, 10, "power of two"),
            (128, 128, "smaller than"),
            (64, 96, "smaller than"),
            (usize::MAX - 1, 4, "overflow"),
        ] {
            let err = TiledIlt::new(LevelSetIlt::default(), core, halo)
                .err()
                .unwrap_or_else(|| panic!("core {core} halo {halo} must be rejected"));
            assert!(matches!(err, TiledError::BadConfiguration(_)));
            assert!(
                err.to_string().contains(needle),
                "core {core} halo {halo}: got {err}"
            );
        }
    }

    #[test]
    fn accepts_the_standard_geometry() {
        let tiled = TiledIlt::new(LevelSetIlt::default(), 128, 64).expect("128+2·64=256 is valid");
        assert_eq!(tiled.tile_px(), 256);
    }

    #[test]
    fn warm_start_reuses_repeated_tiles() {
        let opt = LevelSetIlt::builder().max_iterations(8).build();
        let cache = WarmStartCache::in_memory();
        let tiled = TiledIlt::new(opt, 128, 64)
            .expect("valid tiling")
            .with_warm_start(cache.clone());
        let (mask, stats) = tiled
            .optimize_with_stats(&optics(), &repeated_tile_target(), 4.0)
            .expect("tiles run");
        assert!(mask.sum() > 0.0);
        assert_eq!(stats.tiles, 5);
        assert_eq!(stats.cold, 1, "one representative solves cold");
        assert_eq!(stats.warm, 4, "every repeat warm-starts");
        assert_eq!(cache.len(), 1, "one pattern cached");
        let per_warm = stats.warm_full_iterations as f64 / stats.warm as f64;
        let per_cold = stats.cold_full_iterations as f64 / stats.cold as f64;
        assert!(
            per_warm < per_cold,
            "warm tiles averaged {per_warm} iterations vs cold {per_cold}"
        );
    }

    #[test]
    fn warm_start_second_run_is_all_hits() {
        let cache = WarmStartCache::in_memory();
        let make = || {
            TiledIlt::new(LevelSetIlt::builder().max_iterations(6).build(), 128, 64)
                .expect("valid tiling")
                .with_warm_start(cache.clone())
        };
        let (first_mask, first) = make()
            .optimize_with_stats(&optics(), &repeated_tile_target(), 4.0)
            .expect("first run");
        assert_eq!((first.cold, first.warm), (1, 4));
        let (second_mask, second) = make()
            .optimize_with_stats(&optics(), &repeated_tile_target(), 4.0)
            .expect("second run");
        assert_eq!((second.cold, second.warm), (0, 5), "all cached now");
        // The second run warm-starts from the first run's refined ψ, so
        // the masks need not be identical — but both must print.
        assert!(first_mask.sum() > 0.0 && second_mask.sum() > 0.0);
    }

    #[test]
    fn warm_start_off_matches_warm_start_free_run() {
        // Without a cache attached, the stats-reporting path is the
        // plain cold path.
        let tiled = TiledIlt::new(LevelSetIlt::builder().max_iterations(5).build(), 128, 64)
            .expect("valid tiling");
        let target = two_tile_target();
        let plain = tiled.optimize(&optics(), &target, 4.0).expect("runs");
        let (with_stats, stats) = tiled
            .optimize_with_stats(&optics(), &target, 4.0)
            .expect("runs");
        assert_eq!(plain, with_stats);
        assert_eq!(stats.warm, 0);
        assert_eq!(stats.cold, stats.tiles);
        assert_eq!(stats.coarse_iterations, 0);
    }
}
