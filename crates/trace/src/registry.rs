//! Registry sink: aggregates the event stream into per-path latency
//! histograms, counter totals, and gauge last-values — the scrapeable
//! metrics substrate for `lsopc serve` and the source of per-job
//! [`JobMetrics`](crate) summaries in `lsopc-engine`.

use crate::histogram::Histogram;
use crate::{Event, TraceSink};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Aggregates spans into one [`Histogram`] per span path, counters into
/// atomic totals, and gauges into last-value slots. Composes with
/// `MemorySink`/`JsonlSink` via [`FanoutSink`](crate::FanoutSink) or a
/// scoped-sink layer, and renders as Prometheus text exposition.
///
/// Iteration events fold into the same vocabulary: gauges
/// `iter.cost_total`, `iter.cost_nominal`, `iter.cost_pvb`,
/// `iter.lambda_scale` (last value wins) and counters `iter.count` /
/// `iter.rollbacks`. Warnings count under `warnings`.
///
/// Locking: the maps take a read lock per event on the steady state
/// (write lock only the first time a path/name appears); the values are
/// `Arc<Histogram>` / `Arc<AtomicU64>`, so recording itself is
/// lock-free. Gauges take the write lock (rare events).
#[derive(Default)]
pub struct MetricsRegistry {
    spans: RwLock<BTreeMap<String, Arc<Histogram>>>,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, f64>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn span_hist(&self, path: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .spans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(path)
        {
            return h.clone();
        }
        let mut map = self.spans.write().unwrap_or_else(|e| e.into_inner());
        map.entry(path.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return c.clone();
        }
        let mut map = self.counters.write().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// The duration histogram for span `path`, or `None` if that path
    /// never closed a span.
    pub fn span_histogram(&self, path: &str) -> Option<Arc<Histogram>> {
        self.spans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(path)
            .cloned()
    }

    /// All span paths seen so far, sorted.
    pub fn span_paths(&self) -> Vec<String> {
        self.spans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Total of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// All counter totals, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Last sampled value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
    }

    /// All gauge last-values, sorted by name.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Folds every series of `other` into `self` (histogram merge for
    /// spans, add for counters, last-write-wins for gauges). Lets a
    /// per-job registry roll up into a process-lifetime one.
    pub fn absorb(&self, other: &MetricsRegistry) {
        for (path, hist) in other.spans.read().unwrap_or_else(|e| e.into_inner()).iter() {
            self.span_hist(path).merge(hist);
        }
        for (name, cell) in other
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let n = cell.load(Ordering::Relaxed);
            if n > 0 {
                self.counter_cell(name).fetch_add(n, Ordering::Relaxed);
            }
        }
        let theirs = other.gauges.read().unwrap_or_else(|e| e.into_inner());
        let mut mine = self.gauges.write().unwrap_or_else(|e| e.into_inner());
        for (name, value) in theirs.iter() {
            mine.insert(name.clone(), *value);
        }
    }

    /// Renders the registry in Prometheus text exposition format
    /// (version 0.0.4): span durations as a `histogram` family in
    /// seconds with cumulative `le` buckets (only buckets that change
    /// the running total, plus `+Inf`), counters as
    /// `lsopc_events_total`, gauges as `lsopc_gauge`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let spans = self.spans.read().unwrap_or_else(|e| e.into_inner());
        if !spans.is_empty() {
            out.push_str("# TYPE lsopc_span_duration_seconds histogram\n");
            for (path, hist) in spans.iter() {
                let label = prom_label(path);
                let mut cumulative = 0u64;
                for (upper_ns, n) in hist.nonzero_buckets() {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "lsopc_span_duration_seconds_bucket{{path=\"{label}\",le=\"{}\"}} {cumulative}",
                        prom_f64(upper_ns as f64 / 1e9)
                    );
                }
                let _ = writeln!(
                    out,
                    "lsopc_span_duration_seconds_bucket{{path=\"{label}\",le=\"+Inf\"}} {cumulative}"
                );
                let _ = writeln!(
                    out,
                    "lsopc_span_duration_seconds_sum{{path=\"{label}\"}} {}",
                    prom_f64(hist.sum() as f64 / 1e9)
                );
                let _ = writeln!(
                    out,
                    "lsopc_span_duration_seconds_count{{path=\"{label}\"}} {}",
                    hist.count()
                );
            }
        }
        drop(spans);
        let counters = self.counters();
        if !counters.is_empty() {
            out.push_str("# TYPE lsopc_events_total counter\n");
            for (name, total) in &counters {
                let _ = writeln!(
                    out,
                    "lsopc_events_total{{name=\"{}\"}} {total}",
                    prom_label(name)
                );
            }
        }
        let gauges = self.gauges();
        if !gauges.is_empty() {
            out.push_str("# TYPE lsopc_gauge gauge\n");
            for (name, value) in &gauges {
                let _ = writeln!(
                    out,
                    "lsopc_gauge{{name=\"{}\"}} {}",
                    prom_label(name),
                    prom_f64(*value)
                );
            }
        }
        out
    }
}

/// Escapes a label value per the Prometheus text format.
fn prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus sample value: plain decimal, `NaN`/`+Inf`/`-Inf` spelled
/// out per the text format.
fn prom_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{value}")
    }
}

impl TraceSink for MetricsRegistry {
    fn event(&self, event: &Event<'_>) {
        match event {
            Event::Span { path, dur_ns, .. } => {
                self.span_hist(path).record(*dur_ns);
            }
            Event::Count { name, delta } => {
                self.counter_cell(name).fetch_add(*delta, Ordering::Relaxed);
            }
            Event::Gauge { name, value } => {
                self.gauges
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert((*name).to_string(), *value);
            }
            Event::Warn { .. } => {
                self.counter_cell("warnings")
                    .fetch_add(1, Ordering::Relaxed);
            }
            Event::Iter(rec) => {
                self.counter_cell("iter.count")
                    .fetch_add(1, Ordering::Relaxed);
                if rec.rolled_back {
                    self.counter_cell("iter.rollbacks")
                        .fetch_add(1, Ordering::Relaxed);
                }
                let mut gauges = self.gauges.write().unwrap_or_else(|e| e.into_inner());
                gauges.insert("iter.cost_total".to_string(), rec.cost_total);
                gauges.insert("iter.cost_nominal".to_string(), rec.cost_nominal);
                gauges.insert("iter.cost_pvb".to_string(), rec.cost_pvb);
                gauges.insert("iter.lambda_scale".to_string(), rec.lambda_scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterRecord;

    fn span(path: &str, dur_ns: u64) -> Event<'_> {
        Event::Span {
            name: "leaf",
            path,
            dur_ns,
        }
    }

    #[test]
    fn spans_aggregate_into_per_path_histograms() {
        let reg = MetricsRegistry::new();
        reg.event(&span("a/b", 100));
        reg.event(&span("a/b", 200));
        reg.event(&span("c", 5));
        let h = reg.span_histogram("a/b").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 300);
        assert_eq!(reg.span_histogram("c").unwrap().count(), 1);
        assert!(reg.span_histogram("missing").is_none());
        assert_eq!(reg.span_paths(), vec!["a/b".to_string(), "c".to_string()]);
    }

    #[test]
    fn counters_gauges_and_iters_fold_in() {
        let reg = MetricsRegistry::new();
        reg.event(&Event::Count {
            name: "cache.hit",
            delta: 3,
        });
        reg.event(&Event::Gauge {
            name: "pool.threads",
            value: 4.0,
        });
        reg.event(&Event::Warn {
            origin: "t",
            message: "m",
        });
        reg.event(&Event::Iter(&IterRecord {
            iteration: 0,
            cost_total: 9.0,
            cost_nominal: 7.0,
            cost_pvb: 2.0,
            lambda_scale: 1.0,
            beta: 0.0,
            time_step: 0.1,
            max_velocity: 1.0,
            rolled_back: true,
        }));
        assert_eq!(reg.counter("cache.hit"), 3);
        assert_eq!(reg.counter("warnings"), 1);
        assert_eq!(reg.counter("iter.count"), 1);
        assert_eq!(reg.counter("iter.rollbacks"), 1);
        assert_eq!(reg.gauge("pool.threads"), Some(4.0));
        assert_eq!(reg.gauge("iter.cost_total"), Some(9.0));
    }

    #[test]
    fn absorb_rolls_one_registry_into_another() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.event(&span("x", 10));
        b.event(&span("x", 20));
        b.event(&Event::Count {
            name: "n",
            delta: 2,
        });
        a.absorb(&b);
        assert_eq!(a.span_histogram("x").unwrap().count(), 2);
        assert_eq!(a.counter("n"), 2);
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        reg.event(&span("fft", 100));
        reg.event(&span("fft", 100));
        reg.event(&span("fft", 1_000_000));
        reg.event(&Event::Count {
            name: "cache.hit",
            delta: 7,
        });
        reg.event(&Event::Gauge {
            name: "pool.threads",
            value: 4.0,
        });
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lsopc_span_duration_seconds histogram"));
        assert!(
            text.contains("lsopc_span_duration_seconds_bucket{path=\"fft\",le=\"+Inf\"} 3"),
            "exposition:\n{text}"
        );
        assert!(text.contains("lsopc_span_duration_seconds_count{path=\"fft\"} 3"));
        assert!(text.contains("lsopc_events_total{name=\"cache.hit\"} 7"));
        assert!(text.contains("lsopc_gauge{name=\"pool.threads\"} 4"));
        // Cumulative: the last finite bucket must already total 3.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("lsopc_span_duration_seconds_bucket"))
            .collect();
        assert!(lines.len() >= 3, "expected >= 3 bucket lines:\n{text}");
        assert!(lines[lines.len() - 2].ends_with(" 3"), "lines: {lines:?}");
    }
}
