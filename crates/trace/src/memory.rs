//! In-memory aggregating sink and the profile report built from it.

use crate::{Event, IterRecord, TraceSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

#[derive(Default)]
struct State {
    /// path → (calls, total ns). BTreeMap so reports are deterministic.
    spans: BTreeMap<String, (u64, u64)>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    warnings: Vec<(String, String)>,
    iterations: Vec<IterRecord>,
}

/// Aggregates every event in memory. Backs `--metrics` and the
/// `lsopc profile` subcommand; also the workhorse of the trace tests.
#[derive(Default)]
pub struct MemorySink {
    state: Mutex<State>,
}

impl MemorySink {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything aggregated so far.
    pub fn report(&self) -> ProfileReport {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut spans: Vec<SpanStat> = state
            .spans
            .iter()
            .map(|(path, &(calls, total_ns))| SpanStat {
                path: path.clone(),
                calls,
                total_ns,
                self_ns: total_ns,
            })
            .collect();
        // Self time = total − Σ direct children, clamped at 0 (children
        // running concurrently on pool workers can overlap the parent).
        let totals: BTreeMap<&str, u64> = spans
            .iter()
            .map(|s| (s.path.as_str(), s.total_ns))
            .collect();
        let mut child_sums: BTreeMap<String, u64> = BTreeMap::new();
        for stat in &spans {
            if let Some(idx) = stat.path.rfind('/') {
                let parent = &stat.path[..idx];
                if totals.contains_key(parent) {
                    *child_sums.entry(parent.to_string()).or_insert(0) += stat.total_ns;
                }
            }
        }
        for stat in &mut spans {
            let children = child_sums.get(&stat.path).copied().unwrap_or(0);
            stat.self_ns = stat.total_ns.saturating_sub(children);
        }
        spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
        ProfileReport {
            spans,
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            iterations: state.iterations.clone(),
            warnings: state.warnings.clone(),
        }
    }

    /// Warnings received so far, `(origin, message)` in arrival order.
    pub fn warnings(&self) -> Vec<(String, String)> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .warnings
            .clone()
    }

    /// Optimizer iteration records received so far, in arrival order.
    pub fn iterations(&self) -> Vec<IterRecord> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iterations
            .clone()
    }
}

impl TraceSink for MemorySink {
    fn event(&self, event: &Event<'_>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match event {
            Event::Span { path, dur_ns, .. } => {
                let entry = state.spans.entry((*path).to_string()).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur_ns;
            }
            Event::Count { name, delta } => {
                *state.counters.entry((*name).to_string()).or_insert(0) += delta;
            }
            Event::Gauge { name, value } => {
                state.gauges.insert((*name).to_string(), *value);
            }
            Event::Warn { origin, message } => {
                state
                    .warnings
                    .push(((*origin).to_string(), (*message).to_string()));
            }
            Event::Iter(record) => state.iterations.push((*record).clone()),
        }
    }
}

/// Aggregated timing for one span path.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStat {
    /// Full hierarchical `/`-joined path.
    pub path: String,
    /// Number of times the span closed.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_ns: u64,
    /// Total minus the summed totals of direct children, clamped at 0.
    pub self_ns: u64,
}

/// Snapshot of a [`MemorySink`]: span table (sorted by self time,
/// descending), counter totals, gauge last-values, and per-iteration
/// optimizer records.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Span stats, sorted by `self_ns` descending.
    pub spans: Vec<SpanStat>,
    /// Counter name → total.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last sampled value.
    pub gauges: BTreeMap<String, f64>,
    /// Optimizer iterations in order.
    pub iterations: Vec<IterRecord>,
    /// Warnings `(origin, message)` in order.
    pub warnings: Vec<(String, String)>,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl ProfileReport {
    /// Renders the flamegraph-style self/total table plus counter and
    /// gauge totals as plain text (the `lsopc profile` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let path_width = self
            .spans
            .iter()
            .map(|s| s.path.len())
            .chain(["span".len()])
            .max()
            .unwrap_or(4);
        let _ = writeln!(
            out,
            "{:<path_width$}  {:>8}  {:>12}  {:>12}  {:>12}",
            "span", "calls", "self (ms)", "total (ms)", "ms/call"
        );
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(path_width + 2 + 8 + 2 + 12 + 2 + 12 + 2 + 12)
        );
        for stat in &self.spans {
            let per_call = if stat.calls > 0 {
                ms(stat.total_ns) / stat.calls as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<path_width$}  {:>8}  {:>12.3}  {:>12.3}  {:>12.4}",
                stat.path,
                stat.calls,
                ms(stat.self_ns),
                ms(stat.total_ns),
                per_call
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, total) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {total:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges:");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {value:>12.3}");
            }
        }
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "\nwarnings:");
            for (origin, message) in &self.warnings {
                let _ = writeln!(out, "  [{origin}] {message}");
            }
        }
        out
    }

    /// Serializes the report as a single JSON object (the `--metrics`
    /// artifact). Hand-rolled: the workspace has no JSON dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"v\": {},", crate::SCHEMA_VERSION);
        out.push_str("  \"spans\": [\n");
        for (i, stat) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": {}, \"calls\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
                crate::jsonl::json_string(&stat.path),
                stat.calls,
                stat.total_ns,
                stat.self_ns
            );
            out.push_str(if i + 1 < self.spans.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"counters\": {");
        for (i, (name, total)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", crate::jsonl::json_string(name), total);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {}",
                crate::jsonl::json_string(name),
                crate::jsonl::json_f64(*value)
            );
        }
        out.push_str("\n  },\n  \"iterations\": [\n");
        for (i, rec) in self.iterations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"iteration\": {}, \"cost_total\": {}, \"cost_nominal\": {}, \"cost_pvb\": {}, \"lambda_scale\": {}, \"beta\": {}, \"time_step\": {}, \"max_velocity\": {}, \"rolled_back\": {}}}",
                rec.iteration,
                crate::jsonl::json_f64(rec.cost_total),
                crate::jsonl::json_f64(rec.cost_nominal),
                crate::jsonl::json_f64(rec.cost_pvb),
                crate::jsonl::json_f64(rec.lambda_scale),
                crate::jsonl::json_f64(rec.beta),
                crate::jsonl::json_f64(rec.time_step),
                crate::jsonl::json_f64(rec.max_velocity),
                rec.rolled_back
            );
            out.push_str(if i + 1 < self.iterations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_event(path: &str, dur_ns: u64) -> Event<'_> {
        Event::Span {
            name: "leaf",
            path,
            dur_ns,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let sink = MemorySink::new();
        sink.event(&span_event("a", 100));
        sink.event(&span_event("a/b", 30));
        sink.event(&span_event("a/b/c", 10));
        let report = sink.report();
        let get = |p: &str| report.spans.iter().find(|s| s.path == p).unwrap();
        assert_eq!(get("a").self_ns, 70); // 100 − 30, grandchild untouched
        assert_eq!(get("a/b").self_ns, 20);
        assert_eq!(get("a/b/c").self_ns, 10);
    }

    #[test]
    fn overlapping_children_clamp_self_time_at_zero() {
        // Parallel children can sum past the parent's wall clock.
        let sink = MemorySink::new();
        sink.event(&span_event("p", 100));
        sink.event(&span_event("p/w", 80));
        sink.event(&span_event("p/w", 80));
        let report = sink.report();
        let parent = report.spans.iter().find(|s| s.path == "p").unwrap();
        assert_eq!(parent.self_ns, 0);
    }

    #[test]
    fn orphan_child_keeps_full_self_time() {
        // A child whose parent never closed must not be subtracted from
        // a nonexistent row (or panic).
        let sink = MemorySink::new();
        sink.event(&span_event("lost/child", 40));
        let report = sink.report();
        assert_eq!(report.spans[0].self_ns, 40);
    }

    #[test]
    fn report_sorted_by_self_time_descending() {
        let sink = MemorySink::new();
        sink.event(&span_event("small", 10));
        sink.event(&span_event("big", 500));
        sink.event(&span_event("mid", 50));
        let order: Vec<String> = sink.report().spans.into_iter().map(|s| s.path).collect();
        assert_eq!(order, ["big", "mid", "small"]);
    }

    #[test]
    fn text_render_lists_spans_and_counters() {
        let sink = MemorySink::new();
        sink.event(&span_event("fft2d.forward", 2_000_000));
        sink.event(&Event::Count {
            name: "cache.plan.hit",
            delta: 7,
        });
        let text = sink.report().render_text();
        assert!(text.contains("fft2d.forward"));
        assert!(text.contains("cache.plan.hit"));
        assert!(text.contains('7'));
    }

    #[test]
    fn json_report_is_balanced_and_contains_fields() {
        let sink = MemorySink::new();
        sink.event(&span_event("a", 5));
        sink.event(&Event::Gauge {
            name: "pool.threads",
            value: 4.0,
        });
        let json = sink.report().to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.contains("\"v\": 1"));
        assert!(json.contains("\"pool.threads\": 4"));
    }
}
