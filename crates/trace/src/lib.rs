//! Zero-dependency tracing and metrics for the lsopc workspace.
//!
//! The workspace needs per-stage timing (FFT passes, kernel folds, the
//! optimizer phases), cache/pool counters, and per-iteration optimizer
//! telemetry — without pulling in external `tracing`/`log` crates and
//! without perturbing the bit-for-bit determinism contract. This crate
//! provides exactly that substrate:
//!
//! - [`span!`] — an RAII scope timer. Guards push onto a thread-local
//!   span stack, so nested spans produce hierarchical `/`-joined paths
//!   (`optimize.iter/litho.cost_and_gradient/fft2d.forward`). Worker
//!   threads of the `lsopc-parallel` pool inherit the submitting
//!   caller's path via [`current_path_token`]/[`with_base_path`], so
//!   pool-side work nests under the span that dispatched it.
//! - [`count`]/[`gauge`] — monotonic counters and last-value gauges
//!   (cache hits/misses, pool jobs, chunks claimed, guard rollbacks).
//! - [`warn`] — structured warnings that route through the active sink,
//!   falling back to stderr when no sink is installed.
//! - [`iter`] — one structured record per optimizer iteration.
//!
//! Events flow to a process-global [`TraceSink`] installed with
//! [`install`], and/or to a thread-scoped sink entered with
//! [`with_scoped_sink`]. Scoped sinks are the multi-tenant seam: two
//! concurrent jobs in one process each wrap their run in a scope and
//! receive separate event streams, while a globally installed sink (the
//! CLI `--trace` default) still sees everything. Scopes hop threads with
//! the work: [`task_scope`]/[`with_task_scope`] capture the calling
//! thread's scope (path prefix + sink) so the `lsopc-parallel` pool can
//! re-enter it on its workers. With no sink installed anywhere, every
//! instrumentation point is a couple of relaxed atomic loads and a
//! branch — no clock read, no allocation, no locking — which is what
//! makes it safe to leave the instrumentation compiled into the hot
//! paths unconditionally.
//!
//! Determinism: the layer only *observes*. It never changes chunking,
//! iteration order, or arithmetic, so enabling any sink leaves optimizer
//! output bit-identical (covered by `trace_determinism` tests in
//! `lsopc-core`).

pub mod analyze;
mod histogram;
mod jsonl;
mod memory;
mod registry;

pub use histogram::{Histogram, NUM_BUCKETS, RELATIVE_ERROR_BOUND};
pub use jsonl::JsonlSink;
pub use memory::{MemorySink, ProfileReport, SpanStat};
pub use registry::MetricsRegistry;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Version of the event schema emitted by [`JsonlSink`]. Bump when the
/// shape of serialized events changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// One telemetry event. Sinks receive events by reference and must not
/// block for long: span exits on hot paths call straight into the sink.
///
/// Events carry no timestamp; a sink that needs one (e.g. the JSONL
/// stream) assigns it at write time under its own lock, which also makes
/// the written timestamps monotonically non-decreasing across threads.
#[derive(Clone, Debug, PartialEq)]
pub enum Event<'a> {
    /// A span closed: `path` is the full `/`-joined hierarchy including
    /// the span's own name; `dur_ns` is its wall-clock duration.
    Span {
        /// Leaf name as written at the instrumentation point.
        name: &'static str,
        /// Full hierarchical path, `/`-joined, including `name`.
        path: &'a str,
        /// Wall-clock duration in nanoseconds.
        dur_ns: u64,
    },
    /// A monotonic counter increment.
    Count {
        /// Counter name, e.g. `cache.spectra.hit`.
        name: &'static str,
        /// Increment (usually 1).
        delta: u64,
    },
    /// A last-value-wins gauge sample.
    Gauge {
        /// Gauge name, e.g. `pool.threads`.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
    /// A structured warning.
    Warn {
        /// Subsystem that raised it, e.g. `parallel`.
        origin: &'static str,
        /// Human-readable message.
        message: &'a str,
    },
    /// Per-iteration optimizer telemetry.
    Iter(&'a IterRecord),
}

/// One optimizer iteration, as reported by `lsopc-core`.
///
/// Mirrors the fields of `IterationRecord` that matter for telemetry;
/// kept dependency-free here so `lsopc-core` can depend on this crate
/// and not the other way around.
#[derive(Clone, Debug, PartialEq)]
pub struct IterRecord {
    /// Iteration index, 0-based.
    pub iteration: usize,
    /// Total cost `nominal + pvb` driving descent.
    pub cost_total: f64,
    /// Nominal-dose term of the cost.
    pub cost_nominal: f64,
    /// Process-variation-band term of the cost.
    pub cost_pvb: f64,
    /// Effective `λ_t` multiplier (1.0 until the guard backs off).
    pub lambda_scale: f64,
    /// Conjugate-gradient β (0.0 on restarts).
    pub beta: f64,
    /// CFL time step Δt taken this iteration.
    pub time_step: f64,
    /// Peak |velocity| before the CFL clamp.
    pub max_velocity: f64,
    /// True when the health guard rolled this iteration back.
    pub rolled_back: bool,
}

/// Receives every event emitted while installed. Implementations must be
/// thread-safe: spans close concurrently from pool workers.
pub trait TraceSink: Send + Sync {
    /// Handles one event. Called from arbitrary threads.
    fn event(&self, event: &Event<'_>);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Broadcasts every event to each inner sink in order. Lets `--trace`
/// (JSONL stream) and `--metrics` (in-memory aggregate) run in the same
/// process off a single instrumentation pass.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// Builds a fan-out over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn event(&self, event: &Event<'_>) {
        for sink in &self.sinks {
            sink.event(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Fast-path switch: true iff a global sink is installed. Every
/// instrumentation point loads this (Relaxed) before doing other work.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Number of live scoped-sink frames across all threads. Non-zero turns
/// [`enabled`] on so instrumentation points take the slow path and
/// consult the thread-local scope.
static SCOPED_COUNT: AtomicUsize = AtomicUsize::new(0);

/// The installed global sink. Only read when `ENABLED` is true, so the
/// lock is never touched on the disabled path.
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

thread_local! {
    /// Names of the spans currently open on this thread, oldest first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Path prefix inherited from another thread (pool workers), if any.
    static BASE: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
    /// Sink scoped to this thread's current [`with_scoped_sink`] frame.
    static SCOPED: RefCell<Option<Arc<dyn TraceSink>>> = const { RefCell::new(None) };
}

/// True when any sink may receive events: a global sink is installed or
/// some thread is inside a scoped-sink frame. Two relaxed atomic loads;
/// this is the disabled-path cost of every instrumentation point.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || SCOPED_COUNT.load(Ordering::Relaxed) > 0
}

/// Installs `sink` as the process-global event receiver and enables all
/// instrumentation points. Replaces any previously installed sink.
pub fn install(sink: Arc<dyn TraceSink>) {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed sink (flushing it) and disables all
/// instrumentation points. No-op when nothing is installed.
pub fn uninstall() {
    let sink = {
        let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
        ENABLED.store(false, Ordering::Release);
        slot.take()
    };
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Flushes this thread's scoped sink and the global sink, if present.
pub fn flush() {
    if let Some(sink) = scoped_sink() {
        sink.flush();
    }
    if let Some(sink) = global_sink() {
        sink.flush();
    }
}

fn global_sink() -> Option<Arc<dyn TraceSink>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    SINK.read().unwrap_or_else(|e| e.into_inner()).clone()
}

fn scoped_sink() -> Option<Arc<dyn TraceSink>> {
    if SCOPED_COUNT.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SCOPED.with(|s| s.borrow().clone())
}

/// Emits one event to this thread's scoped sink (if inside a scope) and
/// to the installed global sink (if any). Cheap no-op when disabled.
#[inline]
pub fn emit(event: &Event<'_>) {
    if !enabled() {
        return;
    }
    if let Some(sink) = scoped_sink() {
        sink.event(event);
    }
    if let Some(sink) = global_sink() {
        sink.event(event);
    }
}

/// Increments the monotonic counter `name` by `delta`.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    emit(&Event::Count { name, delta });
}

/// Samples the gauge `name` at `value` (last value wins in aggregates).
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    emit(&Event::Gauge { name, value });
}

/// Reports one optimizer iteration.
#[inline]
pub fn iter(record: &IterRecord) {
    if !enabled() {
        return;
    }
    emit(&Event::Iter(record));
}

/// Raises a structured warning. Routed through the scoped and global
/// sinks when present; otherwise printed to stderr so operational
/// warnings (invalid `LSOPC_THREADS`, …) are never silently dropped.
pub fn warn(origin: &'static str, message: &str) {
    let scoped = scoped_sink();
    let global = global_sink();
    if scoped.is_none() && global.is_none() {
        // allow-print: stderr fallback when no trace sink is reachable.
        eprintln!("warning: [{origin}] {message}");
        return;
    }
    let event = Event::Warn { origin, message };
    if let Some(sink) = scoped {
        sink.event(&event);
    }
    if let Some(sink) = global {
        sink.event(&event);
    }
}

/// Opens a timed span; the span closes (and reports) when the returned
/// guard drops. Prefer `let _span = span!("name");` — binding to `_`
/// would drop immediately.
///
/// `$name` must be a `&'static str` literal; hierarchy comes from
/// nesting at runtime, not from the name.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// RAII guard for one open span. Created by [`span!`].
///
/// Guards must drop in LIFO order on a given thread (the natural order
/// for scope-based usage); out-of-order drops would mis-attribute paths.
#[must_use = "a span guard times the scope it lives in; binding to `_` drops it immediately"]
pub struct SpanGuard {
    /// `None` when tracing was disabled at entry: the drop is then free.
    start: Option<Instant>,
    name: &'static str,
}

impl SpanGuard {
    /// Opens a span named `name` if tracing is enabled.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        if !enabled() {
            return Self { start: None, name };
        }
        STACK.with(|stack| stack.borrow_mut().push(name));
        Self {
            start: Some(Instant::now()),
            name,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(
                stack.last(),
                Some(&self.name),
                "span guards dropped out of order"
            );
            stack.pop();
            joined_path(&stack, Some(self.name))
        });
        emit(&Event::Span {
            name: self.name,
            path: &path,
            dur_ns,
        });
    }
}

/// Joins the inherited base path, the open-span stack, and an optional
/// leaf into one `/`-separated path.
fn joined_path(stack: &[&'static str], leaf: Option<&'static str>) -> String {
    let base = BASE.with(|b| b.borrow().clone());
    let mut path = String::new();
    if let Some(base) = &base {
        path.push_str(base);
    }
    for name in stack.iter().copied().chain(leaf) {
        if !path.is_empty() {
            path.push('/');
        }
        path.push_str(name);
    }
    path
}

/// Captures the calling thread's current span path as a cheap clonable
/// token, or `None` when tracing is disabled or no span is open. The
/// `lsopc-parallel` pool stores this on each job so worker threads can
/// nest their spans under the submitting caller's path.
pub fn current_path_token() -> Option<Arc<str>> {
    if !enabled() {
        return None;
    }
    let path = STACK.with(|stack| joined_path(&stack.borrow(), None));
    if path.is_empty() {
        None
    } else {
        Some(Arc::from(path.as_str()))
    }
}

/// Runs `f` with this thread's span paths rooted under `base` (a token
/// from [`current_path_token`] on another thread). The previous base is
/// restored afterwards, including on panic. `None` runs `f` unchanged.
pub fn with_base_path<R>(base: Option<Arc<str>>, f: impl FnOnce() -> R) -> R {
    let Some(base) = base else { return f() };
    struct Restore(Option<Arc<str>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BASE.with(|b| *b.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(BASE.with(|b| b.borrow_mut().replace(base)));
    f()
}

/// Runs `f` with `sink` as this thread's scoped sink. While inside the
/// scope, every event emitted on this thread (and on pool workers that
/// re-enter the scope via [`with_task_scope`]) is delivered to `sink`
/// *in addition to* the global sink, if one is installed. Scopes nest:
/// the previous scoped sink is restored afterwards, including on panic.
///
/// This is the multi-tenant seam: concurrent jobs on different threads
/// each get their own event stream without touching process-global
/// state.
pub fn with_scoped_sink<R>(sink: Arc<dyn TraceSink>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn TraceSink>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPED.with(|s| *s.borrow_mut() = self.0.take());
            SCOPED_COUNT.fetch_sub(1, Ordering::Relaxed);
        }
    }
    SCOPED_COUNT.fetch_add(1, Ordering::Relaxed);
    let _restore = Restore(SCOPED.with(|s| s.borrow_mut().replace(sink)));
    f()
}

/// Runs `f` with `sink` *layered over* this thread's current scoped
/// sink: while inside, events reach both `sink` and whatever scoped
/// sink was already in force (plus the global sink, as always). This is
/// how a nested collector — e.g. the per-job metrics registry inside
/// `Engine::submit` — observes a run without shadowing the stream an
/// enclosing `Session` scope set up.
///
/// Contrast with [`with_scoped_sink`], which *replaces* the thread's
/// scoped sink for the duration of the frame.
pub fn with_layered_scoped_sink<R>(sink: Arc<dyn TraceSink>, f: impl FnOnce() -> R) -> R {
    match scoped_sink() {
        Some(existing) => {
            let layered = Arc::new(FanoutSink::new(vec![existing, sink]));
            with_scoped_sink(layered, f)
        }
        None => with_scoped_sink(sink, f),
    }
}

/// A captured trace scope: the calling thread's span-path prefix plus
/// its scoped sink, if any. Cheap to clone; carried by `lsopc-parallel`
/// jobs so worker threads report into the submitting caller's scope.
#[derive(Clone)]
pub struct TaskScope {
    base: Option<Arc<str>>,
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for TaskScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskScope")
            .field("base", &self.base)
            .field("sink", &self.sink.as_ref().map(|_| "dyn TraceSink"))
            .finish()
    }
}

/// Captures the calling thread's trace scope — current span path and
/// scoped sink — or `None` when there is nothing to propagate. Pair
/// with [`with_task_scope`] on the receiving thread.
pub fn task_scope() -> Option<TaskScope> {
    let sink = scoped_sink();
    let base = if enabled() {
        let path = STACK.with(|stack| joined_path(&stack.borrow(), None));
        if path.is_empty() {
            None
        } else {
            Some(Arc::from(path.as_str()))
        }
    } else {
        None
    };
    if base.is_none() && sink.is_none() {
        None
    } else {
        Some(TaskScope { base, sink })
    }
}

/// Runs `f` inside `scope` (a token from [`task_scope`] on another
/// thread): span paths root under the captured prefix and events route
/// to the captured scoped sink. `None` runs `f` unchanged. Previous
/// thread state is restored afterwards, including on panic.
pub fn with_task_scope<R>(scope: Option<TaskScope>, f: impl FnOnce() -> R) -> R {
    let Some(scope) = scope else { return f() };
    let TaskScope { base, sink } = scope;
    let run = move || with_base_path(base, f);
    match sink {
        Some(sink) => with_scoped_sink(sink, run),
        None => run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the process-global sink.
    static GLOBAL: Mutex<()> = Mutex::new(());

    fn with_memory_sink(f: impl FnOnce()) -> Arc<MemorySink> {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        f();
        uninstall();
        sink
    }

    #[test]
    fn disabled_span_reports_nothing() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!enabled());
        let _span = span!("quiet");
        drop(_span);
        assert!(current_path_token().is_none());
    }

    #[test]
    fn nested_spans_produce_hierarchical_paths() {
        let sink = with_memory_sink(|| {
            let _outer = span!("outer");
            {
                let _inner = span!("inner");
            }
        });
        let report = sink.report();
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"outer"), "paths: {paths:?}");
        assert!(paths.contains(&"outer/inner"), "paths: {paths:?}");
    }

    #[test]
    fn repeated_spans_aggregate_counts() {
        let sink = with_memory_sink(|| {
            for _ in 0..5 {
                let _span = span!("work");
            }
        });
        let report = sink.report();
        let stat = report.spans.iter().find(|s| s.path == "work").unwrap();
        assert_eq!(stat.calls, 5);
    }

    #[test]
    fn base_path_roots_worker_spans() {
        let sink = with_memory_sink(|| {
            {
                let _outer = span!("submit");
            }
            assert!(
                current_path_token().is_none(),
                "token must capture only open spans"
            );
            let _outer = span!("submit");
            let token = current_path_token();
            assert_eq!(token.as_deref(), Some("submit"));
            std::thread::scope(|scope| {
                let token = token.clone();
                scope.spawn(move || {
                    with_base_path(token, || {
                        let _span = span!("chunk");
                    });
                });
            });
        });
        let report = sink.report();
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"submit/chunk"), "paths: {paths:?}");
    }

    #[test]
    fn base_path_restored_after_scope() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        install(Arc::new(MemorySink::new()));
        with_base_path(Some(Arc::from("root")), || {
            with_base_path(Some(Arc::from("deeper")), || {
                let _span = span!("x");
            });
            // Outer base must be back in force.
            let _outer = span!("y");
            assert_eq!(current_path_token().as_deref(), Some("root/y"));
        });
        assert!(current_path_token().is_none());
        uninstall();
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let sink = with_memory_sink(|| {
            count("cache.hit", 1);
            count("cache.hit", 2);
            gauge("threads", 4.0);
            gauge("threads", 8.0);
        });
        let report = sink.report();
        assert_eq!(report.counters.get("cache.hit"), Some(&3));
        assert_eq!(report.gauges.get("threads"), Some(&8.0));
    }

    #[test]
    fn warn_routes_to_sink_when_installed() {
        let sink = with_memory_sink(|| {
            warn("parallel", "requested 0 threads");
        });
        let warns = sink.warnings();
        assert_eq!(warns.len(), 1);
        assert_eq!(
            warns[0],
            ("parallel".to_string(), "requested 0 threads".to_string())
        );
    }

    #[test]
    fn iter_records_collect_in_order() {
        let sink = with_memory_sink(|| {
            for i in 0..3 {
                iter(&IterRecord {
                    iteration: i,
                    cost_total: 10.0 - i as f64,
                    cost_nominal: 8.0,
                    cost_pvb: 2.0,
                    lambda_scale: 1.0,
                    beta: 0.5,
                    time_step: 0.1,
                    max_velocity: 3.0,
                    rolled_back: false,
                });
            }
        });
        let iters = sink.iterations();
        assert_eq!(iters.len(), 3);
        assert_eq!(iters[2].iteration, 2);
        assert_eq!(iters[0].cost_total, 10.0);
    }

    #[test]
    fn fanout_reaches_all_sinks() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fanout = FanoutSink::new(vec![a.clone(), b.clone()]);
        fanout.event(&Event::Count {
            name: "n",
            delta: 2,
        });
        assert_eq!(a.report().counters.get("n"), Some(&2));
        assert_eq!(b.report().counters.get("n"), Some(&2));
    }

    #[test]
    fn scoped_sink_captures_without_global_install() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let sink = Arc::new(MemorySink::new());
        with_scoped_sink(sink.clone(), || {
            assert!(enabled());
            let _span = span!("scoped");
            count("scoped.hits", 3);
        });
        let report = sink.report();
        assert!(report.spans.iter().any(|s| s.path == "scoped"));
        assert_eq!(report.counters.get("scoped.hits"), Some(&3));
        // Scope exited: thread is back to fully disabled.
        assert!(!enabled());
    }

    #[test]
    fn scoped_and_global_sinks_both_receive() {
        let scoped = Arc::new(MemorySink::new());
        let global = with_memory_sink(|| {
            with_scoped_sink(scoped.clone(), || {
                count("both", 1);
            });
            count("global.only", 1);
        });
        assert_eq!(scoped.report().counters.get("both"), Some(&1));
        assert_eq!(scoped.report().counters.get("global.only"), None);
        assert_eq!(global.report().counters.get("both"), Some(&1));
        assert_eq!(global.report().counters.get("global.only"), Some(&1));
    }

    #[test]
    fn scoped_sinks_isolate_concurrent_threads() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        std::thread::scope(|scope| {
            let (a, b) = (a.clone(), b.clone());
            scope.spawn(move || {
                with_scoped_sink(a, || {
                    count("stream.a", 1);
                })
            });
            scope.spawn(move || {
                with_scoped_sink(b, || {
                    count("stream.b", 1);
                })
            });
        });
        assert_eq!(a.report().counters.get("stream.a"), Some(&1));
        assert_eq!(a.report().counters.get("stream.b"), None);
        assert_eq!(b.report().counters.get("stream.b"), Some(&1));
        assert_eq!(b.report().counters.get("stream.a"), None);
    }

    #[test]
    fn task_scope_carries_sink_and_path_to_workers() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let sink = Arc::new(MemorySink::new());
        with_scoped_sink(sink.clone(), || {
            let _outer = span!("submit");
            let scope = task_scope();
            assert!(scope.is_some());
            std::thread::scope(|threads| {
                threads.spawn(move || {
                    with_task_scope(scope, || {
                        let _span = span!("chunk");
                    });
                });
            });
        });
        let report = sink.report();
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"submit/chunk"), "paths: {paths:?}");
    }

    #[test]
    fn layered_scope_reaches_both_sinks() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let outer = Arc::new(MemorySink::new());
        let inner = Arc::new(MemorySink::new());
        with_scoped_sink(outer.clone(), || {
            with_layered_scoped_sink(inner.clone(), || count("layered", 1));
            count("outer.only", 1);
        });
        // The layered frame must not shadow the enclosing scope…
        assert_eq!(outer.report().counters.get("layered"), Some(&1));
        assert_eq!(inner.report().counters.get("layered"), Some(&1));
        // …and must end with the frame.
        assert_eq!(inner.report().counters.get("outer.only"), None);
        assert_eq!(outer.report().counters.get("outer.only"), Some(&1));
        assert!(!enabled());
    }

    #[test]
    fn layered_scope_without_enclosing_scope_is_plain() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let sink = Arc::new(MemorySink::new());
        with_layered_scoped_sink(sink.clone(), || count("solo", 1));
        assert_eq!(sink.report().counters.get("solo"), Some(&1));
        assert!(!enabled());
    }

    #[test]
    fn scoped_sink_restored_after_nested_scope() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let outer = Arc::new(MemorySink::new());
        let inner = Arc::new(MemorySink::new());
        with_scoped_sink(outer.clone(), || {
            with_scoped_sink(inner.clone(), || count("nested", 1));
            count("outer.after", 1);
        });
        assert_eq!(inner.report().counters.get("nested"), Some(&1));
        assert_eq!(outer.report().counters.get("nested"), None);
        assert_eq!(outer.report().counters.get("outer.after"), Some(&1));
        assert!(!enabled());
    }
}
