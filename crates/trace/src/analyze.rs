//! Offline analyzer for schema-v1 JSONL traces.
//!
//! Ingests the event stream a [`JsonlSink`](crate::JsonlSink) wrote
//! (`lsopc … --trace run.jsonl`) and aggregates it into the report the
//! `lsopc analyze` subcommand prints: a span tree with self/total time
//! and latency percentiles (via [`Histogram`]), counter totals, cache
//! hit ratios, a convergence-curve summary, and flagged anomalies.
//!
//! Parsing is tolerant by design: the stream may be truncated mid-run
//! (that is precisely when post-mortem analysis matters), so malformed
//! or foreign lines are counted and skipped, never fatal. Only a stream
//! with *zero* recognizable events is an error.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated timing and percentiles for one span path.
#[derive(Clone, Debug)]
pub struct SpanAnalysis {
    /// Full `/`-joined hierarchical path.
    pub path: String,
    /// Number of times the span closed.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_ns: u64,
    /// Total minus summed direct-children totals, clamped at 0.
    pub self_ns: u64,
    /// Median call duration (histogram upper bound, ≤ 6.25% high).
    pub p50_ns: u64,
    /// 90th-percentile call duration.
    pub p90_ns: u64,
    /// 99th-percentile call duration.
    pub p99_ns: u64,
}

/// Hit/miss totals for one cache family (`cache.<family>.hit/miss`).
#[derive(Clone, Debug)]
pub struct CacheRatio {
    /// Family name, e.g. `spectra`, `plan`, `warmstart`.
    pub family: String,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl CacheRatio {
    /// Hit fraction in `[0, 1]`; 0 when the family saw no traffic.
    pub fn ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Convergence-curve summary built from the `iter` events.
#[derive(Clone, Debug)]
pub struct Convergence {
    /// Number of iteration records in the stream.
    pub iterations: usize,
    /// Cost of the first recorded iteration.
    pub first_cost: f64,
    /// Cost of the last recorded iteration.
    pub last_cost: f64,
    /// Largest single-iteration cost drop.
    pub best_delta: f64,
    /// Iterations the health guard rolled back.
    pub rollbacks: u64,
}

/// Everything `lsopc analyze` derives from one trace file.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Recognized event lines.
    pub events: usize,
    /// Unparseable or foreign lines skipped.
    pub skipped: usize,
    /// Span analyses sorted by path (parents precede children).
    pub spans: Vec<SpanAnalysis>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge last-values.
    pub gauges: BTreeMap<String, f64>,
    /// Cache families with any traffic.
    pub cache_ratios: Vec<CacheRatio>,
    /// Convergence summary, when the trace holds iteration events.
    pub convergence: Option<Convergence>,
    /// Warnings captured in the stream, `(origin, message)`.
    pub warnings: Vec<(String, String)>,
    /// Early-stop reason derived from `run.stop.*` counters, if any.
    pub stop_reason: Option<String>,
    /// Human-readable anomaly flags (empty = nothing suspicious).
    pub anomalies: Vec<String>,
}

/// A span's p99 this many times above its median flags a latency-tail
/// anomaly (with at least [`TAIL_MIN_CALLS`] calls to damp noise).
pub const TAIL_RATIO: u64 = 8;
/// Minimum calls before the tail-latency rule applies.
pub const TAIL_MIN_CALLS: u64 = 8;
/// Cache families with at least this much traffic and a hit ratio below
/// [`CACHE_MIN_RATIO`] flag a hit-ratio collapse.
pub const CACHE_MIN_TRAFFIC: u64 = 16;
/// Hit-ratio floor for the cache anomaly rule.
pub const CACHE_MIN_RATIO: f64 = 0.5;

/// Analyzes the text of a schema-v1 JSONL trace. Tolerates truncated
/// and malformed lines (counted in [`TraceReport::skipped`]); errors
/// only when no recognizable event survives.
pub fn analyze(text: &str) -> Result<TraceReport, String> {
    let mut spans: BTreeMap<String, (u64, u64, Histogram)> = BTreeMap::new();
    let mut report = TraceReport::default();
    let mut iters: Vec<(f64, bool)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = (|| -> Option<()> {
            match str_field(line, "kind")?.as_str() {
                "span" => {
                    let path = str_field(line, "path")?;
                    let dur_ns = u64_field(line, "dur_ns")?;
                    let entry = spans
                        .entry(path)
                        .or_insert_with(|| (0, 0, Histogram::new()));
                    entry.0 += 1;
                    entry.1 += dur_ns;
                    entry.2.record(dur_ns);
                }
                "count" => {
                    let name = str_field(line, "name")?;
                    let delta = u64_field(line, "delta")?;
                    *report.counters.entry(name).or_insert(0) += delta;
                }
                "gauge" => {
                    let name = str_field(line, "name")?;
                    let value = f64_field(line, "value")?;
                    report.gauges.insert(name, value);
                }
                "warn" => {
                    report
                        .warnings
                        .push((str_field(line, "origin")?, str_field(line, "message")?));
                }
                "iter" => {
                    let cost = f64_field(line, "cost_total")?;
                    let rolled = bool_field(line, "rolled_back").unwrap_or(false);
                    iters.push((cost, rolled));
                }
                _ => return None,
            }
            Some(())
        })();
        match parsed {
            Some(()) => report.events += 1,
            None => report.skipped += 1,
        }
    }
    if report.events == 0 {
        return Err(format!(
            "no schema-v1 trace events found ({} unrecognized lines)",
            report.skipped
        ));
    }

    // Self time: total − Σ direct children, clamped at 0 (children on
    // pool workers can overlap the parent) — same rule as MemorySink.
    let totals: BTreeMap<&str, u64> = spans.iter().map(|(p, v)| (p.as_str(), v.1)).collect();
    let mut child_sums: BTreeMap<String, u64> = BTreeMap::new();
    for (path, (_, total, _)) in &spans {
        if let Some(idx) = path.rfind('/') {
            let parent = &path[..idx];
            if totals.contains_key(parent) {
                *child_sums.entry(parent.to_string()).or_insert(0) += total;
            }
        }
    }
    report.spans = spans
        .into_iter()
        .map(|(path, (calls, total_ns, hist))| {
            let children = child_sums.get(&path).copied().unwrap_or(0);
            SpanAnalysis {
                self_ns: total_ns.saturating_sub(children),
                p50_ns: hist.quantile(0.50),
                p90_ns: hist.quantile(0.90),
                p99_ns: hist.quantile(0.99),
                path,
                calls,
                total_ns,
            }
        })
        .collect();

    // Cache families: counters shaped `cache.<family>.hit|miss`.
    let mut families: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (name, total) in &report.counters {
        if let Some(rest) = name.strip_prefix("cache.") {
            if let Some(family) = rest.strip_suffix(".hit") {
                families.entry(family.to_string()).or_insert((0, 0)).0 += total;
            } else if let Some(family) = rest.strip_suffix(".miss") {
                families.entry(family.to_string()).or_insert((0, 0)).1 += total;
            }
        }
    }
    report.cache_ratios = families
        .into_iter()
        .map(|(family, (hits, misses))| CacheRatio {
            family,
            hits,
            misses,
        })
        .collect();

    if !iters.is_empty() {
        let rollbacks = iters.iter().filter(|(_, r)| *r).count() as u64;
        let best_delta = iters
            .windows(2)
            .map(|w| w[0].0 - w[1].0)
            .fold(0.0f64, f64::max);
        report.convergence = Some(Convergence {
            iterations: iters.len(),
            first_cost: iters[0].0,
            last_cost: iters[iters.len() - 1].0,
            best_delta,
            rollbacks,
        });
    }

    report.stop_reason = report
        .counters
        .iter()
        .find(|(name, &total)| name.starts_with("run.stop.") && total > 0)
        .map(|(name, _)| name["run.stop.".len()..].to_string());

    report.anomalies = find_anomalies(&report);
    Ok(report)
}

fn find_anomalies(report: &TraceReport) -> Vec<String> {
    let mut out = Vec::new();
    let rollbacks = report.counters.get("guard.rollback").copied().unwrap_or(0);
    if rollbacks > 0 {
        out.push(format!(
            "guard rolled back {rollbacks} iteration(s) — descent was unhealthy at least once"
        ));
    }
    if report.counters.get("guard.gave_up").copied().unwrap_or(0) > 0 {
        out.push("health guard gave up (strict-recovery budget exhausted)".to_string());
    }
    for span in &report.spans {
        if span.calls >= TAIL_MIN_CALLS && span.p50_ns > 0 && span.p99_ns > TAIL_RATIO * span.p50_ns
        {
            out.push(format!(
                "latency tail on `{}`: p99 {:.3} ms vs p50 {:.3} ms over {} calls",
                span.path,
                span.p99_ns as f64 / 1e6,
                span.p50_ns as f64 / 1e6,
                span.calls
            ));
        }
    }
    for cache in &report.cache_ratios {
        let traffic = cache.hits + cache.misses;
        if traffic >= CACHE_MIN_TRAFFIC && cache.ratio() < CACHE_MIN_RATIO {
            out.push(format!(
                "cache `{}` hit ratio collapsed: {:.0}% over {traffic} accesses",
                cache.family,
                cache.ratio() * 100.0
            ));
        }
    }
    if let Some(reason) = &report.stop_reason {
        out.push(format!("run stopped early: {reason}"));
    }
    out
}

impl TraceReport {
    /// Renders the analysis as the plain-text report `lsopc analyze`
    /// prints: span tree with percentiles, counters, cache ratios,
    /// convergence summary, and anomaly flags.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events: {} parsed, {} skipped",
            self.events, self.skipped
        );
        if !self.spans.is_empty() {
            let width = self
                .spans
                .iter()
                .map(|s| s.path.len() + 2 * depth(&s.path))
                .chain(["span".len()])
                .max()
                .unwrap_or(4);
            let _ = writeln!(
                out,
                "\n{:<width$}  {:>7}  {:>11}  {:>11}  {:>10}  {:>10}  {:>10}",
                "span", "calls", "self (ms)", "total (ms)", "p50 (ms)", "p90 (ms)", "p99 (ms)"
            );
            for span in &self.spans {
                let indent = "  ".repeat(depth(&span.path));
                let label = format!("{indent}{}", span.path);
                let _ = writeln!(
                    out,
                    "{label:<width$}  {:>7}  {:>11.3}  {:>11.3}  {:>10.3}  {:>10.3}  {:>10.3}",
                    span.calls,
                    span.self_ns as f64 / 1e6,
                    span.total_ns as f64 / 1e6,
                    span.p50_ns as f64 / 1e6,
                    span.p90_ns as f64 / 1e6,
                    span.p99_ns as f64 / 1e6,
                );
            }
        }
        if !self.cache_ratios.is_empty() {
            let _ = writeln!(out, "\ncaches:");
            for cache in &self.cache_ratios {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>8} hits  {:>8} misses  {:>6.1}% hit",
                    cache.family,
                    cache.hits,
                    cache.misses,
                    cache.ratio() * 100.0
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, total) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {total:>12}");
            }
        }
        if let Some(c) = &self.convergence {
            let _ = writeln!(out, "\nconvergence:");
            let _ = writeln!(out, "  iterations      {:>12}", c.iterations);
            let _ = writeln!(out, "  first cost      {:>12.4}", c.first_cost);
            let _ = writeln!(out, "  last cost       {:>12.4}", c.last_cost);
            let _ = writeln!(
                out,
                "  total drop      {:>12.4}",
                c.first_cost - c.last_cost
            );
            let _ = writeln!(out, "  best drop/iter  {:>12.4}", c.best_delta);
            let _ = writeln!(out, "  rollbacks       {:>12}", c.rollbacks);
        }
        let _ = writeln!(
            out,
            "\nstop reason: {}",
            self.stop_reason
                .as_deref()
                .unwrap_or("none (ran to completion)")
        );
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "\nwarnings:");
            for (origin, message) in &self.warnings {
                let _ = writeln!(out, "  [{origin}] {message}");
            }
        }
        if self.anomalies.is_empty() {
            let _ = writeln!(out, "\nanomalies: none");
        } else {
            let _ = writeln!(out, "\nanomalies:");
            for anomaly in &self.anomalies {
                let _ = writeln!(out, "  ! {anomaly}");
            }
        }
        out
    }
}

fn depth(path: &str) -> usize {
    path.matches('/').count()
}

/// Extracts the string value of `"key"` from one JSON line, decoding
/// the escapes [`JsonlSink`](crate::JsonlSink) emits.
fn str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = line.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// The raw (unquoted) value token after `"key": `.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    raw_field(line, key)?.parse().ok()
}

fn f64_field(line: &str, key: &str) -> Option<f64> {
    let raw = raw_field(line, key)?;
    if raw == "null" {
        return Some(f64::NAN);
    }
    raw.parse().ok()
}

fn bool_field(line: &str, key: &str) -> Option<bool> {
    raw_field(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden_trace() -> String {
        let mut t = String::new();
        for i in 0..3 {
            t.push_str(&format!(
                "{{\"v\": 1, \"ts_ns\": {}, \"kind\": \"span\", \"name\": \"forward\", \"path\": \"optimize/litho/forward\", \"dur_ns\": {}}}\n",
                i * 100,
                1000 + i
            ));
        }
        t.push_str("{\"v\": 1, \"ts_ns\": 400, \"kind\": \"span\", \"name\": \"litho\", \"path\": \"optimize/litho\", \"dur_ns\": 5000}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 500, \"kind\": \"span\", \"name\": \"optimize\", \"path\": \"optimize\", \"dur_ns\": 9000}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 600, \"kind\": \"count\", \"name\": \"cache.spectra.hit\", \"delta\": 30}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 610, \"kind\": \"count\", \"name\": \"cache.spectra.miss\", \"delta\": 2}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 620, \"kind\": \"count\", \"name\": \"guard.rollback\", \"delta\": 1}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 630, \"kind\": \"gauge\", \"name\": \"pool.threads\", \"value\": 4.0}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 700, \"kind\": \"iter\", \"iteration\": 0, \"cost_total\": 10.0, \"cost_nominal\": 8.0, \"cost_pvb\": 2.0, \"lambda_scale\": 1.0, \"beta\": 0.0, \"time_step\": 0.1, \"max_velocity\": 1.0, \"rolled_back\": false}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 800, \"kind\": \"iter\", \"iteration\": 1, \"cost_total\": 7.5, \"cost_nominal\": 6.0, \"cost_pvb\": 1.5, \"lambda_scale\": 1.0, \"beta\": 0.2, \"time_step\": 0.1, \"max_velocity\": 1.0, \"rolled_back\": true}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 900, \"kind\": \"warn\", \"origin\": \"guard\", \"message\": \"cost rose \\\"sharply\\\"\"}\n");
        t
    }

    #[test]
    fn golden_trace_round_trips() {
        let report = analyze(&golden_trace()).unwrap();
        assert_eq!(report.events, 12);
        assert_eq!(report.skipped, 0);
        let forward = report
            .spans
            .iter()
            .find(|s| s.path == "optimize/litho/forward")
            .unwrap();
        assert_eq!(forward.calls, 3);
        assert_eq!(forward.total_ns, 3003);
        let litho = report
            .spans
            .iter()
            .find(|s| s.path == "optimize/litho")
            .unwrap();
        assert_eq!(litho.self_ns, 5000 - 3003);
        assert_eq!(report.counters.get("cache.spectra.hit"), Some(&30));
        let spectra = report
            .cache_ratios
            .iter()
            .find(|c| c.family == "spectra")
            .unwrap();
        assert_eq!((spectra.hits, spectra.misses), (30, 2));
        let conv = report.convergence.as_ref().unwrap();
        assert_eq!(conv.iterations, 2);
        assert_eq!(conv.first_cost, 10.0);
        assert_eq!(conv.last_cost, 7.5);
        assert_eq!(conv.rollbacks, 1);
        assert_eq!(report.warnings.len(), 1);
        assert_eq!(report.warnings[0].1, "cost rose \"sharply\"");
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.contains("guard rolled back 1")));
        let text = report.render_text();
        assert!(text.contains("optimize/litho/forward"));
        assert!(text.contains("spectra"));
        assert!(text.contains("anomalies:"));
    }

    #[test]
    fn truncated_and_foreign_lines_are_skipped_not_fatal() {
        let mut trace = golden_trace();
        trace.push_str("{\"v\": 1, \"ts_ns\": 950, \"kind\": \"span\", \"na"); // truncated tail
        trace.push_str("\nnot json at all\n");
        let report = analyze(&trace).unwrap();
        assert_eq!(report.events, 12);
        assert_eq!(report.skipped, 2);
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(analyze("").is_err());
        assert!(analyze("garbage\nmore garbage\n").is_err());
    }

    #[test]
    fn stop_reason_comes_from_run_stop_counters() {
        let mut trace = golden_trace();
        trace.push_str(
            "{\"v\": 1, \"ts_ns\": 960, \"kind\": \"count\", \"name\": \"run.stop.deadline\", \"delta\": 1}\n",
        );
        let report = analyze(&trace).unwrap();
        assert_eq!(report.stop_reason.as_deref(), Some("deadline"));
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.contains("stopped early: deadline")));
    }

    #[test]
    fn tail_latency_and_cache_collapse_flagged() {
        let mut t = String::new();
        for _ in 0..15 {
            t.push_str("{\"v\": 1, \"ts_ns\": 1, \"kind\": \"span\", \"name\": \"s\", \"path\": \"s\", \"dur_ns\": 1000}\n");
        }
        t.push_str("{\"v\": 1, \"ts_ns\": 2, \"kind\": \"span\", \"name\": \"s\", \"path\": \"s\", \"dur_ns\": 90000}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 3, \"kind\": \"count\", \"name\": \"cache.plan.hit\", \"delta\": 2}\n");
        t.push_str("{\"v\": 1, \"ts_ns\": 4, \"kind\": \"count\", \"name\": \"cache.plan.miss\", \"delta\": 30}\n");
        let report = analyze(&t).unwrap();
        assert!(
            report.anomalies.iter().any(|a| a.contains("latency tail")),
            "anomalies: {:?}",
            report.anomalies
        );
        assert!(
            report
                .anomalies
                .iter()
                .any(|a| a.contains("cache `plan` hit ratio collapsed")),
            "anomalies: {:?}",
            report.anomalies
        );
    }
}
