//! Fixed-footprint log-linear histogram for latency aggregation.
//!
//! Layout: values below [`LINEAR_MAX`] (16) land in exact unit buckets;
//! above that, each power-of-two major bucket `[2^h, 2^(h+1))` splits
//! into [`SUB_COUNT`] (16) equal linear sub-buckets. That covers the
//! full `u64` range with [`NUM_BUCKETS`] (976) buckets — a fixed
//! ~7.8 KB of `AtomicU64`s, no allocation after construction.
//!
//! Error bound: a bucket at height `h` spans `2^(h-4)` values, so any
//! reconstructed value (quantiles report the bucket's upper bound) is
//! within a factor of `1 + 1/16` above the true sample — one-sided
//! relative error `< 6.25%`, and *exact* for values below 16. Counts
//! and sums are exact.
//!
//! Concurrency: `record` is a single relaxed `fetch_add` on the bucket
//! plus relaxed updates of count/sum/min/max — lock-free, no CAS loop,
//! safe to call from pool workers on hot paths. Buckets act as natural
//! stripes: concurrent recorders of different magnitudes touch
//! different cache lines. Relaxed ordering is sound because totals are
//! only *read* after the recording threads are joined (job end, report
//! time); integer adds commute, so counts are bit-stable under any
//! thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range splits into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per major (power-of-two) bucket.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Values below this are stored exactly (one bucket per value).
const LINEAR_MAX: u64 = SUB_COUNT as u64;
/// Total bucket count: 16 exact unit buckets + 60 majors × 16 subs.
pub const NUM_BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// One-sided relative error bound of [`Histogram::quantile`] for values
/// `>= 16`; values below 16 are exact. The reported quantile `r`
/// satisfies `v <= r < v * (1 + RELATIVE_ERROR_BOUND)` for the true
/// rank-selected sample `v`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB_COUNT as f64;

/// Fixed-footprint concurrent histogram of `u64` samples (typically
/// nanosecond durations). See the module docs for layout, error bound,
/// and the concurrency contract.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `value`. Exact below [`LINEAR_MAX`]; log-linear
/// above.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let h = 63 - value.leading_zeros(); // h >= SUB_BITS here
    let major = (h - SUB_BITS + 1) as usize;
    let sub = ((value >> (h - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
    major * SUB_COUNT + sub
}

/// Inclusive lower bound of bucket `index`.
#[inline]
fn bucket_lower(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let major = index / SUB_COUNT;
    let sub = (index % SUB_COUNT) as u64;
    let h = major as u32 + SUB_BITS - 1;
    (1u64 << h) + (sub << (h - SUB_BITS))
}

/// Inclusive upper bound of bucket `index`.
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let major = index / SUB_COUNT;
    let h = major as u32 + SUB_BITS - 1;
    let width = 1u64 << (h - SUB_BITS);
    bucket_lower(index).saturating_add(width - 1)
}

impl Histogram {
    /// An empty histogram (~7.8 KB, allocated once).
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array in place.
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = (0..NUM_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length is NUM_BUCKETS by construction"));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: one relaxed `fetch_add` on the
    /// bucket plus relaxed count/sum/min/max updates.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket holding the rank-`ceil(q·count)` sample, clamped to the
    /// observed `[min, max]`. Within [`RELATIVE_ERROR_BOUND`] above the
    /// true sample (exact below 16). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                let lo = self.min.load(Ordering::Relaxed);
                let hi = self.max.load(Ordering::Relaxed);
                return bucket_upper(i).clamp(lo, hi);
            }
        }
        // Unreachable when count/bucket totals agree; fall back to max.
        self.max.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self`. Associative and
    /// commutative (integer adds), so merge order never changes totals.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n > 0 {
            self.count.fetch_add(n, Ordering::Relaxed);
            self.sum
                .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max
                .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    /// The exposition and analyzer layers build cumulative (`le`)
    /// series from this.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n > 0 {
                    Some((bucket_upper(i), n))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Every bucket's lower bound maps back to its own index, and
        // consecutive buckets abut exactly.
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(bucket_lower(i + 1), hi + 1, "gap after bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantile_upper_bound_within_documented_error() {
        let h = Histogram::new();
        for v in [1u64, 17, 100, 1_000, 65_535, 1 << 40] {
            let single = Histogram::new();
            single.record(v);
            let q = single.quantile(0.5);
            assert!(q >= v, "quantile below sample: {q} < {v}");
            let bound = (v as f64 * (1.0 + RELATIVE_ERROR_BOUND)).ceil() as u64;
            assert!(q <= bound, "quantile {q} above error bound {bound} for {v}");
            h.merge(&single);
        }
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_accumulates_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 505);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
    }
}
