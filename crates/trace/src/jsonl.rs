//! JSONL event-stream sink: one JSON object per line, append-only.
//!
//! Timestamps are assigned *inside* the writer lock and clamped to be
//! monotonically non-decreasing, so a stream written by many threads is
//! still globally ordered by `ts_ns` — consumers can replay it without
//! sorting. Every line carries the schema version as `"v"`.

use crate::{Event, TraceSink};
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

struct State<W: Write> {
    writer: W,
    last_ts: u64,
}

/// Streams every event as one JSON line to `W` (typically a buffered
/// file behind `--trace <path.jsonl>`).
pub struct JsonlSink<W: Write + Send> {
    origin: Instant,
    state: Mutex<State<W>>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`; timestamps count nanoseconds from this call.
    pub fn new(writer: W) -> Self {
        Self {
            origin: Instant::now(),
            state: Mutex::new(State { writer, last_ts: 0 }),
        }
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and streams events to it buffered.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn event(&self, event: &Event<'_>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // Clamp under the lock: a thread that measured an earlier clock
        // value but lost the race to the lock must not write backwards.
        let now = self.origin.elapsed().as_nanos() as u64;
        let ts = now.max(state.last_ts);
        state.last_ts = ts;
        let line = render_line(ts, event);
        let _ = state.writer.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let _ = state.writer.flush();
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let state = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        let _ = state.writer.flush();
    }
}

fn render_line(ts: u64, event: &Event<'_>) -> String {
    let v = crate::SCHEMA_VERSION;
    let head = format!("{{\"v\": {v}, \"ts_ns\": {ts}, ");
    let body = match event {
        Event::Span { name, path, dur_ns } => format!(
            "\"kind\": \"span\", \"name\": {}, \"path\": {}, \"dur_ns\": {}",
            json_string(name),
            json_string(path),
            dur_ns
        ),
        Event::Count { name, delta } => format!(
            "\"kind\": \"count\", \"name\": {}, \"delta\": {}",
            json_string(name),
            delta
        ),
        Event::Gauge { name, value } => format!(
            "\"kind\": \"gauge\", \"name\": {}, \"value\": {}",
            json_string(name),
            json_f64(*value)
        ),
        Event::Warn { origin, message } => format!(
            "\"kind\": \"warn\", \"origin\": {}, \"message\": {}",
            json_string(origin),
            json_string(message)
        ),
        Event::Iter(rec) => format!(
            "\"kind\": \"iter\", \"iteration\": {}, \"cost_total\": {}, \"cost_nominal\": {}, \"cost_pvb\": {}, \"lambda_scale\": {}, \"beta\": {}, \"time_step\": {}, \"max_velocity\": {}, \"rolled_back\": {}",
            rec.iteration,
            json_f64(rec.cost_total),
            json_f64(rec.cost_nominal),
            json_f64(rec.cost_pvb),
            json_f64(rec.lambda_scale),
            json_f64(rec.beta),
            json_f64(rec.time_step),
            json_f64(rec.max_velocity),
            rec.rolled_back
        ),
    };
    format!("{head}{body}}}\n")
}

/// Quotes and escapes `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Inf, so those
/// serialize as `null`.
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        let mut s = format!("{value}");
        // `{}` prints integral floats without a dot; keep them numbers
        // but make them round-trip as floats for strict readers.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` target the test can inspect.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn lines(buf: &SharedBuf) -> Vec<String> {
        String::from_utf8(buf.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn events_serialize_one_line_each_with_version() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        sink.event(&Event::Count {
            name: "c",
            delta: 1,
        });
        sink.event(&Event::Span {
            name: "s",
            path: "a/s",
            dur_ns: 42,
        });
        sink.flush();
        let lines = lines(&buf);
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"v\": 1, \"ts_ns\": "), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
        }
        assert!(lines[1].contains("\"path\": \"a/s\""));
    }

    #[test]
    fn timestamps_never_decrease() {
        let buf = SharedBuf::default();
        let sink = Arc::new(JsonlSink::new(buf.clone()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        sink.event(&Event::Count {
                            name: "n",
                            delta: i,
                        });
                    }
                });
            }
        });
        sink.flush();
        let mut last = 0u64;
        for line in lines(&buf) {
            let ts = parse_ts(&line);
            assert!(ts >= last, "ts went backwards: {ts} < {last}");
            last = ts;
        }
    }

    fn parse_ts(line: &str) -> u64 {
        let key = "\"ts_ns\": ";
        let start = line.find(key).unwrap() + key.len();
        line[start..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
    }
}
