//! Histogram accuracy and stability guarantees, checked against an
//! exact oracle.
//!
//! Three contracts from the module docs are exercised here: every
//! quantile stays within [`RELATIVE_ERROR_BOUND`] of the true
//! rank-selected sample (on random *and* adversarial distributions),
//! merging is associative, and recorded totals are bit-stable under any
//! thread count (the workspace test suite runs at `LSOPC_THREADS=1`
//! and `4`; this test additionally compares 1-thread and 4-thread
//! recordings of the same multiset directly).

use lsopc_trace::{Histogram, RELATIVE_ERROR_BOUND};

/// Deterministic 64-bit LCG (Knuth constants); no external RNG crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// The true `q`-quantile under the histogram's rank convention:
/// the rank-`ceil(q·n)` smallest sample (clamped to `[1, n]`).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

const QS: [f64; 9] = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];

/// Asserts every probed quantile of `samples` lands in
/// `[exact, exact · (1 + RELATIVE_ERROR_BOUND)]`.
fn assert_quantiles_within_bound(samples: &[u64], label: &str) {
    let hist = Histogram::new();
    for &v in samples {
        hist.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in QS {
        let exact = exact_quantile(&sorted, q);
        let est = hist.quantile(q);
        assert!(
            est >= exact,
            "{label}: q={q}: estimate {est} below exact {exact}"
        );
        let bound = (exact as f64 * (1.0 + RELATIVE_ERROR_BOUND)).ceil() as u64;
        assert!(
            est <= bound.max(exact),
            "{label}: q={q}: estimate {est} above bound {bound} (exact {exact})"
        );
    }
}

#[test]
fn quantiles_match_oracle_on_random_magnitude_spread() {
    let mut rng = Lcg(0x5eed_1234_dead_beef);
    // Magnitudes from sub-16 (exact region) up to ~2^40, log-uniform-ish.
    let samples: Vec<u64> = (0..10_000)
        .map(|_| {
            let shift = rng.next() % 40;
            rng.next() % (1u64 << (shift + 1))
        })
        .collect();
    assert_quantiles_within_bound(&samples, "random spread");
}

#[test]
fn quantiles_are_exact_when_every_sample_shares_one_bucket() {
    // Adversarial: all mass in a single bucket. The [min, max] clamp
    // must collapse every quantile to the exact sample value.
    let hist = Histogram::new();
    let value = 123_456_789u64;
    for _ in 0..5_000 {
        hist.record(value);
    }
    for q in QS {
        assert_eq!(hist.quantile(q), value, "q={q}");
    }
    assert_eq!(hist.min(), Some(value));
    assert_eq!(hist.max(), Some(value));
}

#[test]
fn quantiles_match_oracle_on_bimodal_distribution() {
    // Adversarial: two far-apart modes, so a rank just past the split
    // must not bleed into the other mode's magnitude.
    let mut samples = vec![100u64; 500];
    samples.extend(std::iter::repeat_n(10_000_000u64, 500));
    assert_quantiles_within_bound(&samples, "bimodal");

    let hist = Histogram::new();
    for &v in &samples {
        hist.record(v);
    }
    // p50 falls on the low mode (rank 500 of 1000), p75 on the high one.
    assert!(hist.quantile(0.5) <= 107, "p50 stayed on the low mode");
    assert!(
        hist.quantile(0.75) >= 10_000_000,
        "p75 reached the high mode"
    );
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut rng = Lcg(42);
    let parts: Vec<Vec<u64>> = (0..3)
        .map(|_| (0..300).map(|_| rng.next() % 1_000_000).collect())
        .collect();
    let fill = |idx: usize| {
        let h = Histogram::new();
        for &v in &parts[idx] {
            h.record(v);
        }
        h
    };

    // (a ⊕ b) ⊕ c
    let left = fill(0);
    left.merge(&fill(1));
    left.merge(&fill(2));
    // a ⊕ (b ⊕ c)
    let bc = fill(1);
    bc.merge(&fill(2));
    let right = fill(0);
    right.merge(&bc);
    // c ⊕ b ⊕ a
    let rev = fill(2);
    rev.merge(&fill(1));
    rev.merge(&fill(0));

    for other in [&right, &rev] {
        assert_eq!(left.count(), other.count());
        assert_eq!(left.sum(), other.sum());
        assert_eq!(left.min(), other.min());
        assert_eq!(left.max(), other.max());
        assert_eq!(left.nonzero_buckets(), other.nonzero_buckets());
        for q in QS {
            assert_eq!(left.quantile(q), other.quantile(q), "q={q}");
        }
    }
}

#[test]
fn concurrent_recording_is_bit_stable_across_thread_counts() {
    let mut rng = Lcg(7);
    let samples: Vec<u64> = (0..8_000).map(|_| rng.next() % (1u64 << 34)).collect();

    // Reference: strictly sequential recording.
    let sequential = Histogram::new();
    for &v in &samples {
        sequential.record(v);
    }

    // Same multiset recorded from 1 and from 4 threads concurrently.
    for threads in [1usize, 4] {
        let hist = Histogram::new();
        std::thread::scope(|scope| {
            for chunk in samples.chunks(samples.len().div_ceil(threads)) {
                let hist = &hist;
                scope.spawn(move || {
                    for &v in chunk {
                        hist.record(v);
                    }
                });
            }
        });
        assert_eq!(hist.count(), sequential.count(), "{threads} threads");
        assert_eq!(hist.sum(), sequential.sum(), "{threads} threads");
        assert_eq!(hist.min(), sequential.min(), "{threads} threads");
        assert_eq!(hist.max(), sequential.max(), "{threads} threads");
        assert_eq!(
            hist.nonzero_buckets(),
            sequential.nonzero_buckets(),
            "bucket counts are bit-stable at {threads} threads"
        );
        for q in QS {
            assert_eq!(
                hist.quantile(q),
                sequential.quantile(q),
                "q={q} at {threads} threads"
            );
        }
    }
}
