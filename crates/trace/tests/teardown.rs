//! Teardown-flush regression: a run that dies mid-stream must not lose
//! buffered trace events.
//!
//! `JsonlSink` buffers through a `BufWriter`; its `Drop` impl flushes,
//! and `with_scoped_sink` restores (and thereby drops) the scoped sink
//! on unwind. Together that means a panicking run still leaves a
//! well-formed JSONL file whose last line is a complete event — which
//! is what makes `lsopc analyze` usable on traces of crashed runs.

use lsopc_trace::JsonlSink;
use std::sync::Arc;

#[test]
fn killed_run_flushes_buffered_events_with_last_line_intact() {
    let path =
        std::env::temp_dir().join(format!("lsopc_trace_teardown_{}.jsonl", std::process::id()));
    // Enough events to overflow the writer's internal buffer at least
    // once, so a missing drop-flush would visibly truncate the tail.
    const EVENTS: u64 = 500;

    let run = {
        let path = path.clone();
        move || {
            let sink = Arc::new(JsonlSink::create(&path).expect("create sink"));
            lsopc_trace::with_scoped_sink(sink, || {
                for _ in 0..EVENTS {
                    lsopc_trace::count("teardown.event", 1);
                }
                // Die mid-run: no explicit flush ever happens.
                panic!("simulated mid-run failure");
            })
        }
    };
    let outcome = std::panic::catch_unwind(run);
    assert!(outcome.is_err(), "the run was killed");

    // The unwind dropped the sink, which flushed the tail of the buffer.
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), EVENTS as usize, "every event was written");
    assert!(text.ends_with('}') || text.ends_with("}\n"), "no torn tail");
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with("{\"v\": 1, "), "line {i} header: {line}");
        assert!(line.ends_with('}'), "line {i} is complete: {line}");
        assert!(
            line.contains("\"name\": \"teardown.event\""),
            "line {i} carries the event: {line}"
        );
    }

    // And the analyzer accepts the crashed run's trace wholesale.
    let report = lsopc_trace::analyze::analyze(&text).expect("crashed trace analyzes");
    assert_eq!(report.events, EVENTS as usize);
    assert_eq!(report.skipped, 0);
    assert_eq!(report.counters.get("teardown.event"), Some(&EVENTS));
}

#[test]
fn scoped_tracing_state_recovers_after_a_killed_run() {
    assert!(!lsopc_trace::enabled(), "clean slate");
    let outcome = std::panic::catch_unwind(|| {
        let sink = Arc::new(lsopc_trace::MemorySink::new());
        lsopc_trace::with_scoped_sink(sink, || {
            lsopc_trace::count("doomed", 1);
            panic!("simulated mid-run failure");
        })
    });
    assert!(outcome.is_err());
    // The scope frame unwound cleanly: instrumentation is fully off
    // again, so the disabled fast path (and its overhead bound) holds.
    assert!(!lsopc_trace::enabled(), "scope count restored on unwind");
}
