//! Mixed-precision simulation backend: f32 transforms, f64 accumulation.
//!
//! The expensive part of every forward/adjoint pass is the FFT work and
//! the per-kernel band windows — all streaming, round-off-tolerant
//! arithmetic that f32 handles at half the memory traffic. The numerically
//! delicate part is the *reduction over kernels*: summing K weighted
//! intensities (or adjoint spectra) loses significance when the partial
//! sums are themselves rounded to f32. [`MixedBackend`] splits the pass
//! accordingly, following the master-weights pattern of mixed-precision
//! training:
//!
//! * per-kernel fields are computed entirely in f32 (f32 FFT plans, f32
//!   embedded spectra from the shared caches — both keyed by scalar type,
//!   so nothing aliases the f64 entries);
//! * every weighted accumulation across kernels happens in f64, using the
//!   *original* f64 kernel weights (the "master weights") — each f32
//!   sample is widened exactly, multiplied by the f64 weight and summed
//!   in f64;
//! * the gradient's single full-size inverse FFT runs at f64 on the
//!   f64-accumulated spectrum, so the finishing transform adds no f32
//!   round-off on top of the band arithmetic.
//!
//! The backend implements [`SimBackend<f64>`]: callers hand it f64 masks
//! and get f64 results, and the optimizer state above it stays f64
//! throughout. Accuracy sits between the pure-f32 and pure-f64 paths (see
//! `DESIGN.md` §11); throughput tracks the f32 path.

use std::collections::HashMap;
use std::sync::Arc;

use crate::backend::{batched_kernel_fields, fold_kernel_grids, mask_spectrum, SimBackend};
use crate::caches::SimCaches;
use lsopc_grid::{Grid, C64};
use lsopc_optics::KernelSet;
use lsopc_parallel::ParallelContext;
use parking_lot::RwLock;

/// Largest number of distinct kernel sets whose f32 casts are kept.
/// Mirrors the spectrum cache's policy: ids are never reused, so
/// long-running sweeps would otherwise grow the map without bound, and
/// re-casting is cheap (one pass over K·S² values).
const CAST_CACHE_CAPACITY: usize = 16;

/// Mixed-precision backend: f32 convolutions and spectra with f64
/// weighted accumulation and an f64 finishing transform on the adjoint.
///
/// Implements [`SimBackend<f64>`] — drop it into an f64
/// [`LithoSimulator`](crate::LithoSimulator) (or use
/// [`LithoSimulator::with_mixed_backend`](crate::LithoSimulator::with_mixed_backend))
/// and the optimizer above keeps its f64 state while the transform-heavy
/// inner loops run at f32.
///
/// # Example
///
/// ```
/// use lsopc_litho::{FftBackend, MixedBackend, SimBackend};
/// use lsopc_grid::Grid;
/// use lsopc_optics::OpticsConfig;
///
/// let kernels = OpticsConfig::iccad2013()
///     .with_field_nm(256.0)
///     .with_kernel_count(4)
///     .kernels(0.0);
/// let mask = Grid::from_fn(64, 64, |x, y| if x > 20 && y > 30 { 1.0 } else { 0.0 });
/// let mixed = MixedBackend::new().aerial_image(&kernels, &mask);
/// let exact = FftBackend::new().aerial_image(&kernels, &mask);
/// let diff = mixed
///     .as_slice()
///     .iter()
///     .zip(exact.as_slice())
///     .map(|(a, b)| (a - b).abs())
///     .fold(0.0, f64::max);
/// assert!(diff < 1e-4, "f32 transforms stay near the f64 result");
/// ```
#[derive(Debug, Default)]
pub struct MixedBackend {
    /// `None` → [`ParallelContext::global`].
    ctx: Option<ParallelContext>,
    /// `None` → the process default ([`lsopc_fft::rfft_default`]).
    rfft: Option<bool>,
    /// f32 casts of the f64 kernel sets seen so far, keyed by
    /// [`KernelSet::id`] (sound: sets are immutable after construction).
    casts: RwLock<HashMap<u64, Arc<KernelSet<f32>>>>,
    /// Cache handles; defaults to the process globals.
    caches: SimCaches,
}

impl MixedBackend {
    /// Creates the backend on the process-global [`ParallelContext`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the backend on an explicit context (tests and thread-count
    /// sweeps).
    pub fn with_context(ctx: ParallelContext) -> Self {
        Self {
            ctx: Some(ctx),
            ..Self::default()
        }
    }

    /// Overrides the rfft routing for this backend instance: `true` runs
    /// the f32 mask → spectrum step through the real-input fast path.
    /// Without an override the process default
    /// ([`lsopc_fft::rfft_default`]) decides.
    pub fn with_rfft(mut self, enabled: bool) -> Self {
        self.rfft = Some(enabled);
        self
    }

    fn rfft(&self) -> bool {
        self.rfft.unwrap_or_else(lsopc_fft::rfft_default)
    }

    fn ctx(&self) -> &ParallelContext {
        self.ctx
            .as_ref()
            .unwrap_or_else(|| ParallelContext::global())
    }

    /// The f32 cast of `kernels`, cached per kernel-set id.
    fn kernels32(&self, kernels: &KernelSet<f64>) -> Arc<KernelSet<f32>> {
        let id = kernels.id();
        if let Some(k32) = self.casts.read().get(&id) {
            return Arc::clone(k32);
        }
        let mut casts = self.casts.write();
        if !casts.contains_key(&id) && casts.len() >= CAST_CACHE_CAPACITY {
            casts.clear();
        }
        casts
            .entry(id)
            .or_insert_with(|| Arc::new(kernels.cast::<f32>()))
            .clone()
    }
}

impl SimBackend<f64> for MixedBackend {
    fn name(&self) -> &'static str {
        "mixed"
    }

    fn aerial_image(&self, kernels: &KernelSet<f64>, mask: &Grid<f64>) -> Grid<f64> {
        let _span = lsopc_trace::span!("backend.mixed.aerial");
        let (w, h) = mask.dims();
        let kernels32 = self.kernels32(kernels);
        let fft32 = self.caches.plan_t::<f32>(w, h);
        let spectra32 = self.caches.embedded(&kernels32, w, h);
        let mask32 = mask.map(|&v| v as f32);
        let mhat = mask_spectrum(&self.caches, &fft32, &mask32, self.rfft());
        let ctx = self.ctx();
        let empty = Grid::new(w, h, 0.0_f64);
        fold_kernel_grids(ctx, kernels.len(), &empty, |range, intensity| {
            let (ks, fields) = batched_kernel_fields(ctx, &fft32, &spectra32, range, &mhat);
            for (&k, field) in ks.iter().zip(&fields) {
                // Master-weight accumulation: widen each f32 intensity
                // sample exactly and sum with the f64 weight.
                let wk = kernels.weight(k);
                for (d, e) in intensity.as_mut_slice().iter_mut().zip(field.as_slice()) {
                    *d += wk * f64::from(e.norm_sqr());
                }
            }
        })
    }

    fn gradient(&self, kernels: &KernelSet<f64>, mask: &Grid<f64>, z: &Grid<f64>) -> Grid<f64> {
        let _span = lsopc_trace::span!("backend.mixed.gradient");
        assert_eq!(mask.dims(), z.dims(), "mask and z dimensions must match");
        let (w, h) = mask.dims();
        let kernels32 = self.kernels32(kernels);
        let fft32 = self.caches.plan_t::<f32>(w, h);
        let spectra32 = self.caches.embedded(&kernels32, w, h);
        let mask32 = mask.map(|&v| v as f32);
        let z32 = z.map(|&v| v as f32);
        let mhat = mask_spectrum(&self.caches, &fft32, &mask32, self.rfft());
        let ctx = self.ctx();
        let empty: Grid<C64> = Grid::new(w, h, C64::ZERO);
        let mut acc = fold_kernel_grids(ctx, kernels.len(), &empty, |range, acc| {
            // e_k = h_k ⊗ M and Ŵ = FFT(z ⊙ e_k), both at f32 with the
            // chunk's band transforms batched.
            let (ks, mut fields) = batched_kernel_fields(ctx, &fft32, &spectra32, range, &mhat);
            for field in fields.iter_mut() {
                for (fv, &zv) in field.as_mut_slice().iter_mut().zip(z32.as_slice()) {
                    *fv = fv.scale(zv);
                }
            }
            let cols: Vec<&[usize]> = ks.iter().map(|&k| spectra32.cols(k)).collect();
            fft32.forward_band_batch_with(ctx, &mut fields, &cols);
            // acc += μ_k · conj(Ŝ_k) ⊙ Ŵ, accumulated at f64 with the
            // f64 master weight.
            for (&k, field) in ks.iter().zip(&fields) {
                spectra32.accumulate_adjoint_upcast(k, field, kernels.weight(k), acc);
            }
        });
        // Finish with one full-size inverse FFT at f64 on the
        // f64-accumulated band spectrum.
        let fft64 = self.caches.plan_t::<f64>(w, h);
        fft64.inverse_band_with(ctx, &mut acc, spectra32.all_cols());
        acc.map(|v| 2.0 * v.re)
    }

    fn set_caches(&mut self, caches: &SimCaches) {
        self.caches = caches.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FftBackend;
    use lsopc_optics::OpticsConfig;

    fn kernels(count: usize) -> KernelSet {
        OpticsConfig::iccad2013()
            .with_field_nm(512.0)
            .with_kernel_count(count)
            .kernels(0.0)
    }

    fn test_mask(n: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| {
            if (n / 4..n / 2).contains(&x) && (n / 8..3 * n / 4).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    fn max_diff(a: &Grid<f64>, b: &Grid<f64>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn aerial_tracks_f64_within_f32_tolerance() {
        let ks = kernels(8);
        let mask = test_mask(128);
        let mixed = MixedBackend::new().aerial_image(&ks, &mask);
        let exact = FftBackend::new().aerial_image(&ks, &mask);
        let d = max_diff(&mixed, &exact);
        assert!(d < 1e-4, "aerial diff {d}");
        assert!(d > 0.0, "premise: the paths really differ in precision");
    }

    #[test]
    fn gradient_tracks_f64_within_f32_tolerance() {
        let ks = kernels(8);
        let mask = test_mask(128);
        let z = Grid::from_fn(128, 128, |x, y| {
            0.02 * ((x as f64 * 0.21).sin() + (y as f64 * 0.13).cos())
        });
        let mixed = MixedBackend::new().gradient(&ks, &mask, &z);
        let exact = FftBackend::new().gradient(&ks, &mask, &z);
        let d = max_diff(&mixed, &exact);
        assert!(d < 1e-5, "gradient diff {d}");
    }

    #[test]
    fn threaded_results_are_identical_to_serial() {
        let ks = kernels(9);
        let mask = test_mask(64);
        let serial = MixedBackend::with_context(lsopc_parallel::ParallelContext::new(1));
        let threaded = MixedBackend::with_context(lsopc_parallel::ParallelContext::new(3));
        assert_eq!(
            serial.aerial_image(&ks, &mask).as_slice(),
            threaded.aerial_image(&ks, &mask).as_slice(),
        );
        let z = Grid::from_fn(64, 64, |x, _| 0.01 * x as f64);
        assert_eq!(
            serial.gradient(&ks, &mask, &z).as_slice(),
            threaded.gradient(&ks, &mask, &z).as_slice(),
        );
    }

    #[test]
    fn rfft_path_matches_dense_path_within_f32_rounding() {
        // The rfft routing changes only the f32 mask → spectrum step, so
        // the two paths agree to f32 rounding, not bit-exactly.
        let ks = kernels(8);
        let mask = test_mask(128);
        let dense = MixedBackend::new().with_rfft(false);
        let rfft = MixedBackend::new().with_rfft(true);
        let da = max_diff(
            &dense.aerial_image(&ks, &mask),
            &rfft.aerial_image(&ks, &mask),
        );
        assert!(da < 1e-5, "aerial rfft-vs-dense diff {da}");
        let z = Grid::from_fn(128, 128, |x, y| {
            0.02 * ((x as f64 * 0.21).sin() + (y as f64 * 0.13).cos())
        });
        let dg = max_diff(
            &dense.gradient(&ks, &mask, &z),
            &rfft.gradient(&ks, &mask, &z),
        );
        assert!(dg < 1e-6, "gradient rfft-vs-dense diff {dg}");
    }

    #[test]
    fn cast_cache_reuses_one_cast_per_kernel_set() {
        let ks = kernels(4);
        let backend = MixedBackend::new();
        let a = backend.kernels32(&ks);
        let b = backend.kernels32(&ks);
        assert!(Arc::ptr_eq(&a, &b), "same set → same cached cast");
        assert_eq!(a.id(), ks.id(), "cast preserves the id");
    }
}
