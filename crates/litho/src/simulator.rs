//! The forward lithography simulator facade.

use crate::{AcceleratedBackend, FftBackend, ResistModel, SimBackend, SimCaches};
use lsopc_grid::{Grid, Scalar};
use lsopc_optics::{KernelSet, OpticsConfig, ProcessCondition, ProcessCorners};
use lsopc_parallel::ParallelContext;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error building a [`LithoSimulator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildSimulatorError {
    /// The simulation grid must be a power of two for the FFT.
    GridNotPowerOfTwo {
        /// Offending grid size.
        grid_px: usize,
    },
    /// The grid cannot hold the optical band (increase the grid or the
    /// pixel size).
    GridTooSmall {
        /// Offending grid size.
        grid_px: usize,
        /// Required minimum (doubled kernel band).
        required: usize,
    },
    /// The pixel size must be positive.
    InvalidPixelSize,
}

impl fmt::Display for BuildSimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GridNotPowerOfTwo { grid_px } => {
                write!(f, "grid size {grid_px} is not a power of two")
            }
            Self::GridTooSmall { grid_px, required } => write!(
                f,
                "grid size {grid_px} cannot hold the optical band (need at least {required})"
            ),
            Self::InvalidPixelSize => write!(f, "pixel size must be positive"),
        }
    }
}

impl Error for BuildSimulatorError {}

/// Hard-threshold prints at the three process corners.
#[derive(Clone, Debug, PartialEq)]
pub struct PrintedCorners<T: Scalar = f64> {
    /// Print at the nominal condition.
    pub nominal: Grid<T>,
    /// Innermost print (defocused, under-dosed).
    pub inner: Grid<T>,
    /// Outermost print (in focus, over-dosed).
    pub outer: Grid<T>,
}

/// Forward lithography simulator: optics + resist + backend + corners.
///
/// Kernel sets are generated lazily per defocus value and cached, so
/// repeated simulation at the three process corners only pays kernel
/// generation once per corner.
///
/// The simulator is generic over the scalar precision `T` its forward
/// and adjoint passes run at (`f64` default; select `f32` with
/// `LithoSimulator::<f32>::from_optics`). Kernel generation always runs
/// in `f64` and is cast once at construction of each cached set — see
/// [`OpticsConfig::kernels_t`](lsopc_optics::OpticsConfig::kernels_t).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_grid::Grid;
/// use lsopc_litho::{LithoSimulator, ProcessCondition};
/// use lsopc_optics::OpticsConfig;
///
/// let sim = LithoSimulator::<f64>::from_optics(
///     &OpticsConfig::iccad2013().with_kernel_count(4),
///     64,
///     4.0,
/// )?;
/// assert_eq!(sim.grid_px(), 64);
/// assert_eq!(sim.field_nm(), 256.0);
/// let mask = Grid::new(64, 64, 1.0);
/// let aerial = sim.aerial(&mask, ProcessCondition::NOMINAL);
/// assert!((aerial[(32, 32)] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub struct LithoSimulator<T: Scalar = f64> {
    optics: OpticsConfig,
    grid_px: usize,
    pixel_nm: f64,
    resist: ResistModel,
    corners: ProcessCorners,
    backend: Box<dyn SimBackend<T>>,
    caches: SimCaches,
    kernel_cache: RwLock<HashMap<i64, Arc<KernelSet<T>>>>,
    #[cfg(feature = "fault-injection")]
    fault: Option<FaultHook>,
}

/// An installed fault injector plus its evaluation counter.
#[cfg(feature = "fault-injection")]
#[derive(Debug)]
struct FaultHook {
    injector: Arc<dyn crate::FaultInjector>,
    calls: std::sync::atomic::AtomicUsize,
}

impl<T: Scalar> fmt::Debug for LithoSimulator<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LithoSimulator")
            .field("grid_px", &self.grid_px)
            .field("pixel_nm", &self.pixel_nm)
            .field("backend", &self.backend.name())
            .field("resist", &self.resist)
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> LithoSimulator<T> {
    /// Builds a simulator over a `grid_px x grid_px` field with square
    /// pixels of `pixel_nm`. The optics' field period is set to
    /// `grid_px · pixel_nm`. Uses the [`FftBackend`] by default.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSimulatorError`] if the grid is not a power of two,
    /// the pixel size is not positive, or the grid is too small to hold
    /// the optical band.
    pub fn from_optics(
        optics: &OpticsConfig,
        grid_px: usize,
        pixel_nm: f64,
    ) -> Result<Self, BuildSimulatorError> {
        if pixel_nm <= 0.0 {
            return Err(BuildSimulatorError::InvalidPixelSize);
        }
        if grid_px == 0 || !grid_px.is_power_of_two() {
            return Err(BuildSimulatorError::GridNotPowerOfTwo { grid_px });
        }
        let optics = optics.clone().with_field_nm(grid_px as f64 * pixel_nm);
        let required = 2 * optics.support_size() - 1;
        if grid_px < required {
            return Err(BuildSimulatorError::GridTooSmall { grid_px, required });
        }
        // Pre-warm the process-wide FFT plan cache for this grid size so
        // the first simulation call pays no planning; the backends fetch
        // the same shared plan on every pass.
        let _ = lsopc_fft::plan_t::<T>(grid_px, grid_px);
        Ok(Self {
            optics,
            grid_px,
            pixel_nm,
            resist: ResistModel::iccad2013(),
            corners: ProcessCorners::iccad2013(),
            backend: Box::new(FftBackend::new()),
            caches: SimCaches::default(),
            kernel_cache: RwLock::new(HashMap::new()),
            #[cfg(feature = "fault-injection")]
            fault: None,
        })
    }

    /// Installs a [`FaultInjector`](crate::FaultInjector) invoked after
    /// every [`cost_and_gradient`](crate::cost_and_gradient) evaluation
    /// on this simulator, with a call counter starting at 0.
    ///
    /// Only available with the `fault-injection` feature; production
    /// builds have no hook.
    #[cfg(feature = "fault-injection")]
    pub fn with_fault_injector(mut self, injector: Arc<dyn crate::FaultInjector>) -> Self {
        self.fault = Some(FaultHook {
            injector,
            calls: std::sync::atomic::AtomicUsize::new(0),
        });
        self
    }

    /// Runs the installed fault injector (if any) against one evaluation.
    /// Called by [`cost_and_gradient`](crate::cost_and_gradient).
    #[cfg(feature = "fault-injection")]
    pub(crate) fn apply_fault(&self, report: &mut crate::CostReport, gradient: &mut Grid<T>) {
        if let Some(hook) = &self.fault {
            let call = hook
                .calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            lsopc_trace::count("fault.hook_calls", 1);
            // The injector API is `f64` (object-safe); round-trip the
            // gradient through `f64`. At `T = f64` both casts are the
            // identity, so the hook sees and writes the exact values.
            let mut g64 = gradient.map(|v| v.to_f64());
            hook.injector.inject(call, report, &mut g64);
            *gradient = g64.map(|&v| T::from_f64(v));
        }
    }

    /// Number of `cost_and_gradient` evaluations seen by the installed
    /// injector so far (0 when none is installed).
    #[cfg(feature = "fault-injection")]
    pub fn fault_calls(&self) -> usize {
        self.fault
            .as_ref()
            .map_or(0, |h| h.calls.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Replaces the compute backend. The simulator's cache handles (see
    /// [`Self::with_caches`]) are injected into the new backend, so the
    /// calls compose in either order.
    pub fn with_backend(mut self, mut backend: Box<dyn SimBackend<T>>) -> Self {
        backend.set_caches(&self.caches);
        self.backend = backend;
        self
    }

    /// Injects shared cache handles (FFT plans, embedded spectra) into
    /// this simulator and its backend. Defaults to the process-global
    /// caches; multi-job hosts pass one [`SimCaches`] clone per simulator
    /// to amortize plans and spectra across submissions.
    pub fn with_caches(mut self, caches: SimCaches) -> Self {
        // Pre-warm the injected plan cache like `from_optics` pre-warmed
        // the global one, so the first call pays no planning.
        let _ = caches.plan_t::<T>(self.grid_px, self.grid_px);
        self.backend.set_caches(&caches);
        self.caches = caches;
        self
    }

    /// Convenience: use the accelerated ("GPU") backend.
    pub fn with_accelerated_backend(self, threads: usize) -> Self {
        self.with_backend(Box::new(AcceleratedBackend::new(threads)))
    }

    /// Replaces the resist model.
    pub fn with_resist(mut self, resist: ResistModel) -> Self {
        self.resist = resist;
        self
    }

    /// Replaces the process corners.
    pub fn with_corners(mut self, corners: ProcessCorners) -> Self {
        self.corners = corners;
        self
    }

    /// Grid size in pixels.
    pub fn grid_px(&self) -> usize {
        self.grid_px
    }

    /// Pixel size in nm.
    pub fn pixel_nm(&self) -> f64 {
        self.pixel_nm
    }

    /// Field period in nm (`grid_px · pixel_nm`).
    pub fn field_nm(&self) -> f64 {
        self.grid_px as f64 * self.pixel_nm
    }

    /// Area of one pixel in nm².
    pub fn pixel_area_nm2(&self) -> f64 {
        self.pixel_nm * self.pixel_nm
    }

    /// The resist model.
    pub fn resist(&self) -> ResistModel {
        self.resist
    }

    /// The process corners used by [`LithoSimulator::print_corners`].
    pub fn corners(&self) -> ProcessCorners {
        self.corners
    }

    /// The optics configuration (with the field set to this simulator's).
    pub fn optics(&self) -> &OpticsConfig {
        &self.optics
    }

    /// Name of the active backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The active backend.
    pub fn backend(&self) -> &dyn SimBackend<T> {
        self.backend.as_ref()
    }

    /// The kernel set for a defocus value (cached; keyed at 1/1000 nm
    /// resolution).
    pub fn kernels_for(&self, defocus_nm: f64) -> Arc<KernelSet<T>> {
        let key = (defocus_nm * 1000.0).round() as i64;
        if let Some(k) = self.kernel_cache.read().get(&key) {
            lsopc_trace::count("cache.kernels.hit", 1);
            return Arc::clone(k);
        }
        lsopc_trace::count("cache.kernels.miss", 1);
        let generated = Arc::new(self.optics.kernels_t::<T>(defocus_nm));
        self.kernel_cache
            .write()
            .entry(key)
            .or_insert(generated)
            .clone()
    }

    fn check_mask(&self, mask: &Grid<T>) {
        assert_eq!(
            mask.dims(),
            (self.grid_px, self.grid_px),
            "mask dimensions must be {0}x{0}",
            self.grid_px
        );
    }

    /// Aerial image at a process condition (dose does **not** scale the
    /// aerial image; it is applied by the resist).
    ///
    /// # Panics
    ///
    /// Panics if the mask dimensions do not match the simulator grid.
    pub fn aerial(&self, mask: &Grid<T>, condition: ProcessCondition) -> Grid<T> {
        self.check_mask(mask);
        let kernels = self.kernels_for(condition.defocus_nm);
        self.backend.aerial_image(&kernels, mask)
    }

    /// Hard-threshold print (paper Eq. (2)) at a process condition.
    ///
    /// # Panics
    ///
    /// Panics if the mask dimensions do not match the simulator grid.
    pub fn print(&self, mask: &Grid<T>, condition: ProcessCondition) -> Grid<T> {
        let aerial = self.aerial(mask, condition);
        self.resist.print(&aerial, condition.dose)
    }

    /// Sigmoid print (paper Eq. (8)) at a process condition.
    ///
    /// # Panics
    ///
    /// Panics if the mask dimensions do not match the simulator grid.
    pub fn print_soft(&self, mask: &Grid<T>, condition: ProcessCondition) -> Grid<T> {
        let aerial = self.aerial(mask, condition);
        self.resist.print_soft(&aerial, condition.dose)
    }

    /// Hard prints at all three process corners.
    ///
    /// The corners are independent simulations and run concurrently on
    /// the shared pool (each one's inner kernel fold then runs inline on
    /// its thread). Results are identical to running them sequentially.
    ///
    /// # Panics
    ///
    /// Panics if the mask dimensions do not match the simulator grid.
    pub fn print_corners(&self, mask: &Grid<T>) -> PrintedCorners<T> {
        self.print_corners_with(ParallelContext::global(), mask)
    }

    /// [`Self::print_corners`] on an explicit [`ParallelContext`].
    pub fn print_corners_with(&self, ctx: &ParallelContext, mask: &Grid<T>) -> PrintedCorners<T> {
        let _span = lsopc_trace::span!("litho.print_corners");
        self.check_mask(mask);
        let corners = [self.corners.nominal, self.corners.inner, self.corners.outer];
        // Pre-warm the kernel cache serially: concurrent misses on the
        // same defocus would generate the same kernel set redundantly.
        for c in &corners {
            let _ = self.kernels_for(c.defocus_nm);
        }
        let mut prints = ctx.par_map(corners.len(), |i| self.print(mask, corners[i]));
        let outer = prints.pop().expect("three corners");
        let inner = prints.pop().expect("three corners");
        let nominal = prints.pop().expect("three corners");
        PrintedCorners {
            nominal,
            inner,
            outer,
        }
    }
}

impl LithoSimulator<f64> {
    /// Convenience: use the mixed-precision backend (f32 transforms,
    /// `f64` accumulation and optimizer state). Only meaningful at the
    /// `f64` facade precision — the backend's contract is
    /// `SimBackend<f64>`.
    pub fn with_mixed_backend(self) -> Self {
        self.with_backend(Box::new(crate::MixedBackend::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> LithoSimulator {
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(6), 64, 4.0)
            .expect("valid configuration")
    }

    fn wire_mask() -> Grid<f64> {
        // A 48nm-wide, 160nm-tall wire centred in the 256nm field.
        Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn builder_validation() {
        let cfg = OpticsConfig::iccad2013();
        assert!(matches!(
            LithoSimulator::<f64>::from_optics(&cfg, 60, 4.0),
            Err(BuildSimulatorError::GridNotPowerOfTwo { grid_px: 60 })
        ));
        assert!(matches!(
            LithoSimulator::<f64>::from_optics(&cfg, 64, 0.0),
            Err(BuildSimulatorError::InvalidPixelSize)
        ));
        // 2048nm field on a 16px grid: band larger than the grid.
        assert!(matches!(
            LithoSimulator::<f64>::from_optics(&cfg, 16, 128.0),
            Err(BuildSimulatorError::GridTooSmall { .. })
        ));
    }

    #[test]
    fn field_and_pixel_accounting() {
        let s = sim();
        assert_eq!(s.field_nm(), 256.0);
        assert_eq!(s.pixel_area_nm2(), 16.0);
        assert_eq!(s.backend_name(), "fft-cpu");
    }

    #[test]
    fn kernel_cache_returns_same_arc() {
        let s = sim();
        let a = s.kernels_for(25.0);
        let b = s.kernels_for(25.0);
        assert!(Arc::ptr_eq(&a, &b));
        let c = s.kernels_for(0.0);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn wire_prints_smaller_than_drawn_without_opc() {
        // The classic OPC motivation: an uncorrected mask under-prints.
        let s = sim();
        let mask = wire_mask();
        let printed = s.print(&mask, ProcessCondition::NOMINAL);
        assert!(printed.sum() > 0.0, "wire must print at all");
        assert!(
            printed.sum() < mask.sum(),
            "printed area {} should be below drawn area {}",
            printed.sum(),
            mask.sum()
        );
    }

    #[test]
    fn dose_ordering_of_prints() {
        // Higher dose prints more area (outer ⊇ nominal ⊇ inner at equal
        // focus).
        let s = sim();
        let mask = wire_mask();
        let corners = s.print_corners(&mask);
        let (inner, nominal, outer) = (
            corners.inner.sum(),
            corners.nominal.sum(),
            corners.outer.sum(),
        );
        assert!(outer >= nominal, "outer {outer} < nominal {nominal}");
        assert!(nominal >= inner, "nominal {nominal} < inner {inner}");
        assert!(outer > inner, "corners must differ");
    }

    #[test]
    fn print_soft_approaches_hard_print() {
        let s = sim().with_resist(ResistModel::new(0.225, 400.0));
        let mask = wire_mask();
        let hard = s.print(&mask, ProcessCondition::NOMINAL);
        let soft = s.print_soft(&mask, ProcessCondition::NOMINAL);
        let mean_gap: f64 = hard
            .as_slice()
            .iter()
            .zip(soft.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / hard.len() as f64;
        assert!(mean_gap < 0.02, "mean gap {mean_gap}");
    }

    #[test]
    fn accelerated_backend_gives_same_print() {
        let mask = wire_mask();
        let cpu = sim();
        let gpu = sim().with_accelerated_backend(2);
        assert_eq!(gpu.backend_name(), "accelerated");
        let a = cpu.print(&mask, ProcessCondition::NOMINAL);
        let b = gpu.print(&mask, ProcessCondition::NOMINAL);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "mask dimensions")]
    fn wrong_mask_size_panics() {
        let s = sim();
        let mask = Grid::new(32, 32, 0.0);
        let _ = s.aerial(&mask, ProcessCondition::NOMINAL);
    }
}
