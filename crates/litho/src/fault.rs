//! Fault injection on the cost-and-gradient path (robustness testing).
//!
//! Compiled only with the `fault-injection` cargo feature; production
//! builds carry no hook and no branch. A [`FaultInjector`] installed via
//! [`LithoSimulator::with_fault_injector`](crate::LithoSimulator::with_fault_injector)
//! is invoked at the end of every [`cost_and_gradient`](crate::cost_and_gradient)
//! call with a monotonically increasing call index, and may corrupt the
//! cost report and/or the gradient in place — or panic from inside a
//! worker-pool job to emulate a poisoned `lsopc-parallel` chunk.
//!
//! The solver health guard in `lsopc-core` is tested against exactly this
//! hook: its property tests inject every [`FaultMode`] at every iteration
//! and assert the optimizer still returns a finite mask no worse than the
//! last healthy checkpoint.

use crate::CostReport;
use lsopc_grid::Grid;
use lsopc_parallel::{CancelToken, ParallelContext, StopReason};
use std::fmt::Debug;

/// What an injected fault does to the cost report / gradient.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum FaultMode {
    /// Poison one gradient cell with NaN.
    NanGradient,
    /// Poison one gradient cell with +∞.
    InfGradient,
    /// Multiply the whole gradient by a large factor (finite spike).
    SpikeGradient(f64),
    /// Replace the nominal cost term with NaN.
    NanCost,
    /// Replace the nominal cost term with +∞.
    InfCost,
    /// Multiply the cost terms by a large factor (finite spike).
    SpikeCost(f64),
    /// Panic from inside a shared-pool worker job, emulating a poisoned
    /// `lsopc-parallel` chunk on the simulator path.
    Panic,
}

impl FaultMode {
    /// Applies this mode to a report/gradient pair.
    pub fn apply(self, report: &mut CostReport, gradient: &mut Grid<f64>) {
        match self {
            Self::NanGradient => poison_gradient(gradient, f64::NAN),
            Self::InfGradient => poison_gradient(gradient, f64::INFINITY),
            Self::SpikeGradient(factor) => {
                for g in gradient.as_mut_slice() {
                    *g *= factor;
                }
            }
            Self::NanCost => report.nominal = f64::NAN,
            Self::InfCost => report.nominal = f64::INFINITY,
            Self::SpikeCost(factor) => {
                report.nominal *= factor;
                report.pvb *= factor;
            }
            Self::Panic => {
                // Panic from a pool job, not from the calling thread: the
                // pool catches it per chunk and re-raises it on the
                // submitting caller after the job drains, which is the
                // exact poisoning path the guard must contain.
                let _ = ParallelContext::global().par_map(2, |i| -> usize {
                    panic!("injected fault: worker panic in job {i}")
                });
            }
        }
    }
}

fn poison_gradient(gradient: &mut Grid<f64>, value: f64) {
    let mid = gradient.len() / 2;
    gradient.as_mut_slice()[mid] = value;
}

/// A hook invoked after every `cost_and_gradient` evaluation.
///
/// `call` counts evaluations on the owning simulator from 0, so "the
/// fault at iteration k" is expressed as `call == k` for optimizers that
/// evaluate once per iteration.
pub trait FaultInjector: Send + Sync + Debug {
    /// Possibly corrupts `report`/`gradient` for evaluation number `call`.
    fn inject(&self, call: usize, report: &mut CostReport, gradient: &mut Grid<f64>);
}

/// The standard scripted injector: fire a [`FaultMode`] once at a chosen
/// call index, or on every call.
#[derive(Clone, Debug)]
pub struct ScriptedFault {
    at_call: Option<usize>,
    mode: FaultMode,
}

impl ScriptedFault {
    /// Fires `mode` exactly once, at evaluation number `at_call`.
    pub fn once(at_call: usize, mode: FaultMode) -> Self {
        Self {
            at_call: Some(at_call),
            mode,
        }
    }

    /// Fires `mode` on every evaluation (for give-up/strict-mode tests).
    pub fn persistent(mode: FaultMode) -> Self {
        Self {
            at_call: None,
            mode,
        }
    }
}

impl FaultInjector for ScriptedFault {
    fn inject(&self, call: usize, report: &mut CostReport, gradient: &mut Grid<f64>) {
        match self.at_call {
            Some(at) if call != at => {}
            _ => self.mode.apply(report, gradient),
        }
    }
}

/// A process-fault injector: cancels a [`CancelToken`] at a chosen
/// evaluation, emulating a signal or an external stop arriving mid-run.
/// The optimizer must notice at the next iteration boundary and stop
/// gracefully (best-so-far mask, final checkpoint, categorized reason)
/// — exactly the contract the `process_fault` suite in `lsopc-core`
/// pins.
#[derive(Clone, Debug)]
pub struct ScriptedCancel {
    at_call: usize,
    token: CancelToken,
    reason: StopReason,
}

impl ScriptedCancel {
    /// Cancels `token` with `reason` at evaluation number `at_call`.
    pub fn new(at_call: usize, token: CancelToken, reason: StopReason) -> Self {
        Self {
            at_call,
            token,
            reason,
        }
    }
}

impl FaultInjector for ScriptedCancel {
    fn inject(&self, call: usize, _report: &mut CostReport, _gradient: &mut Grid<f64>) {
        if call == self.at_call {
            self.token.cancel(self.reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> (CostReport, Grid<f64>) {
        (
            CostReport {
                nominal: 2.0,
                pvb: 1.0,
                w_pvb: 1.0,
            },
            Grid::new(4, 4, 1.0),
        )
    }

    #[test]
    fn once_fires_only_at_its_call() {
        let fault = ScriptedFault::once(3, FaultMode::NanCost);
        let (mut report, mut gradient) = clean();
        fault.inject(2, &mut report, &mut gradient);
        assert!(report.total().is_finite());
        fault.inject(3, &mut report, &mut gradient);
        assert!(report.total().is_nan());
    }

    #[test]
    fn persistent_fires_every_call() {
        let fault = ScriptedFault::persistent(FaultMode::InfGradient);
        for call in 0..4 {
            let (mut report, mut gradient) = clean();
            fault.inject(call, &mut report, &mut gradient);
            assert!(gradient.as_slice().iter().any(|v| !v.is_finite()));
        }
    }

    #[test]
    fn spike_modes_stay_finite() {
        let (mut report, mut gradient) = clean();
        FaultMode::SpikeGradient(1e30).apply(&mut report, &mut gradient);
        FaultMode::SpikeCost(1e30).apply(&mut report, &mut gradient);
        assert!(gradient.as_slice().iter().all(|v| v.is_finite()));
        assert!(report.total().is_finite());
        assert!(report.total() > 1e29);
    }

    #[test]
    fn scripted_cancel_fires_only_at_its_call() {
        let token = CancelToken::new();
        let fault = ScriptedCancel::new(2, token.clone(), StopReason::External);
        let (mut report, mut gradient) = clean();
        fault.inject(1, &mut report, &mut gradient);
        assert!(token.cancelled().is_none());
        fault.inject(2, &mut report, &mut gradient);
        assert_eq!(token.cancelled(), Some(StopReason::External));
        // Report and gradient are untouched — this is a process fault.
        assert!(report.total().is_finite());
        assert!(gradient.as_slice().iter().all(|v| *v == 1.0));
    }

    #[test]
    fn panic_mode_reraises_on_caller_and_pool_survives() {
        let (mut report, mut gradient) = clean();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            FaultMode::Panic.apply(&mut report, &mut gradient);
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The shared pool survives a poisoned job.
        let v = ParallelContext::global().par_map(3, |i| i * 2);
        assert_eq!(v, vec![0, 2, 4]);
    }
}
