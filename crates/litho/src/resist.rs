//! Photoresist models.

use lsopc_grid::{Grid, Scalar};
use serde::{Deserialize, Serialize};

/// The constant-threshold resist model with its sigmoid relaxation.
///
/// The printed (binary) image is `R = 1` where the dosed aerial intensity
/// reaches the threshold (paper Eq. (2)); for gradient back-propagation the
/// step is relaxed to `R = 1 / (1 + exp(−s·(dose·I − I_th)))` (Eq. (8)).
///
/// The ICCAD 2013 threshold is `I_th = 0.225`; the paper leaves the
/// steepness `s` unspecified, we default to 50 (a common choice in the
/// ILT literature).
///
/// # Example
///
/// ```
/// use lsopc_litho::ResistModel;
///
/// let resist = ResistModel::iccad2013();
/// assert_eq!(resist.threshold(), 0.225);
/// assert_eq!(resist.develop(0.3, 1.0), 1.0);
/// assert_eq!(resist.develop(0.1, 1.0), 0.0);
/// // The sigmoid is 0.5 exactly at threshold.
/// assert!((resist.develop_soft(0.225, 1.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResistModel {
    threshold: f64,
    steepness: f64,
}

impl ResistModel {
    /// Creates a resist model.
    ///
    /// # Panics
    ///
    /// Panics if the threshold or steepness is not positive.
    pub fn new(threshold: f64, steepness: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(steepness > 0.0, "steepness must be positive");
        Self {
            threshold,
            steepness,
        }
    }

    /// The ICCAD 2013 model: threshold 0.225, steepness 50.
    pub fn iccad2013() -> Self {
        Self::new(0.225, 50.0)
    }

    /// Intensity threshold `I_th`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Sigmoid steepness `s`.
    pub fn steepness(&self) -> f64 {
        self.steepness
    }

    /// Returns a copy with a different steepness.
    ///
    /// # Panics
    ///
    /// Panics if not positive.
    pub fn with_steepness(mut self, steepness: f64) -> Self {
        assert!(steepness > 0.0, "steepness must be positive");
        self.steepness = steepness;
        self
    }

    /// Hard-threshold development of one intensity sample (Eq. (2)),
    /// with the dose multiplier applied to the intensity.
    #[inline]
    pub fn develop(&self, intensity: f64, dose: f64) -> f64 {
        self.develop_t(intensity, dose)
    }

    /// Sigmoid development of one intensity sample (Eq. (8)).
    #[inline]
    pub fn develop_soft(&self, intensity: f64, dose: f64) -> f64 {
        self.develop_soft_t(intensity, dose)
    }

    /// [`ResistModel::develop`] at scalar precision `T` (the model
    /// parameters are stored in `f64` and rounded into `T` per call; at
    /// `T = f64` the rounding is the identity).
    #[inline]
    pub fn develop_t<T: Scalar>(&self, intensity: T, dose: f64) -> T {
        if T::from_f64(dose) * intensity >= T::from_f64(self.threshold) {
            T::ONE
        } else {
            T::ZERO
        }
    }

    /// [`ResistModel::develop_soft`] at scalar precision `T`.
    #[inline]
    pub fn develop_soft_t<T: Scalar>(&self, intensity: T, dose: f64) -> T {
        let s = T::from_f64(self.steepness);
        let th = T::from_f64(self.threshold);
        T::ONE / (T::ONE + (-(s * (T::from_f64(dose) * intensity - th))).exp())
    }

    /// Hard-threshold development of a whole aerial image.
    pub fn print<T: Scalar>(&self, aerial: &Grid<T>, dose: f64) -> Grid<T> {
        aerial.map(|&i| self.develop_t(i, dose))
    }

    /// Sigmoid development of a whole aerial image.
    pub fn print_soft<T: Scalar>(&self, aerial: &Grid<T>, dose: f64) -> Grid<T> {
        aerial.map(|&i| self.develop_soft_t(i, dose))
    }

    /// Derivative of the sigmoid output with respect to the (undosed)
    /// intensity: `dR/dI = s·dose·R·(1−R)`.
    #[inline]
    pub fn soft_derivative(&self, r: f64, dose: f64) -> f64 {
        self.soft_derivative_t(r, dose)
    }

    /// [`ResistModel::soft_derivative`] at scalar precision `T`.
    #[inline]
    pub fn soft_derivative_t<T: Scalar>(&self, r: T, dose: f64) -> T {
        T::from_f64(self.steepness) * T::from_f64(dose) * r * (T::ONE - r)
    }
}

impl Default for ResistModel {
    fn default() -> Self {
        Self::iccad2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_threshold_with_dose() {
        let r = ResistModel::iccad2013();
        // 0.22 misses at nominal dose but prints at +2%... (0.22*1.02=0.2244)
        assert_eq!(r.develop(0.22, 1.0), 0.0);
        assert_eq!(r.develop(0.222, 1.02), 1.0);
        assert_eq!(r.develop(0.23, 0.98), 1.0);
    }

    #[test]
    fn sigmoid_limits_match_step() {
        let r = ResistModel::new(0.225, 200.0);
        assert!(r.develop_soft(0.4, 1.0) > 0.999);
        assert!(r.develop_soft(0.05, 1.0) < 1e-3);
    }

    #[test]
    fn sigmoid_is_monotone_in_dose() {
        let r = ResistModel::iccad2013();
        assert!(r.develop_soft(0.2, 1.02) > r.develop_soft(0.2, 0.98));
    }

    #[test]
    fn soft_derivative_matches_finite_difference() {
        let r = ResistModel::iccad2013();
        let (i, dose, h) = (0.21, 1.01, 1e-7);
        let fd = (r.develop_soft(i + h, dose) - r.develop_soft(i - h, dose)) / (2.0 * h);
        let analytic = r.soft_derivative(r.develop_soft(i, dose), dose);
        assert!((fd - analytic).abs() < 1e-5, "fd={fd}, analytic={analytic}");
    }

    #[test]
    fn grid_print_applies_elementwise() {
        let r = ResistModel::iccad2013();
        let aerial = Grid::from_vec(2, 1, vec![0.1, 0.3]);
        assert_eq!(r.print(&aerial, 1.0).as_slice(), &[0.0, 1.0]);
        let soft = r.print_soft(&aerial, 1.0);
        assert!(soft.as_slice()[0] < 0.01 && soft.as_slice()[1] > 0.97);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_threshold_panics() {
        let _ = ResistModel::new(0.0, 50.0);
    }
}
