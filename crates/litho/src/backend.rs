//! Simulation backends: the pluggable convolution engines.

use crate::caches::SimCaches;
use crate::spectra::EmbeddedSpectra;
use lsopc_grid::{Complex, Grid, Scalar};
use lsopc_optics::KernelSet;
use lsopc_parallel::ParallelContext;
use std::ops::Range;

/// Folds per-kernel partial grids over the shared pool.
///
/// The kernel range is split into [`lsopc_parallel::REDUCE_CHUNKS`]
/// contiguous chunks (a constant — never the thread count); `chunk_fold`
/// accumulates each chunk's kernels into a fresh clone of `empty`, and
/// the partials are summed elementwise **in chunk order**. Serial and
/// parallel execution therefore run the exact same reduction tree and
/// produce bit-identical grids — this one routine is the accumulation
/// loop of every backend, so the paths cannot drift.
pub(crate) fn fold_kernel_grids<V>(
    ctx: &ParallelContext,
    count: usize,
    empty: &Grid<V>,
    chunk_fold: impl Fn(Range<usize>, &mut Grid<V>) + Sync,
) -> Grid<V>
where
    V: Copy + std::ops::AddAssign + Send + Sync,
{
    let _span = lsopc_trace::span!("litho.kernel_fold");
    ctx.par_map_reduce(
        count,
        |range| {
            let mut partial = empty.clone();
            chunk_fold(range, &mut partial);
            partial
        },
        |mut a, b| {
            for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *x += *y;
            }
            a
        },
    )
    .unwrap_or_else(|| empty.clone())
}

/// `dst += wk · |field|²` — the aerial-image accumulation shared by the
/// reference and FFT backends, at any scalar precision.
pub(crate) fn add_weighted_intensity<T: Scalar>(
    dst: &mut Grid<T>,
    field: &Grid<Complex<T>>,
    wk: T,
) {
    for (d, e) in dst.as_mut_slice().iter_mut().zip(field.as_slice()) {
        *d += wk * e.norm_sqr();
    }
}

/// The mask spectrum in whichever layout the backend's transform path
/// produced: full dense DFT layout (default, byte-for-byte reproducible)
/// or the rfft half layout (opt-in, ~2× cheaper to produce).
#[derive(Debug)]
pub(crate) enum MaskSpectrum<T: Scalar> {
    /// Full `w × h` layout from [`lsopc_fft::Fft2d::forward_real`].
    Dense(Grid<Complex<T>>),
    /// Hermitian `(w/2 + 1) × h` layout from [`lsopc_fft::RfftPlan`].
    Half(lsopc_fft::HalfSpectrum<T>),
}

/// Transforms a real mask into its spectrum, routing through the rfft
/// fast path when `use_rfft` is set (the plan comes from the backend's
/// injected plan cache via `caches`).
pub(crate) fn mask_spectrum<T: Scalar>(
    caches: &SimCaches,
    fft: &lsopc_fft::Fft2d<T>,
    mask: &Grid<T>,
    use_rfft: bool,
) -> MaskSpectrum<T> {
    if use_rfft {
        let (w, h) = mask.dims();
        MaskSpectrum::Half(caches.rplan_t::<T>(w, h).forward(mask))
    } else {
        MaskSpectrum::Dense(fft.forward_real(mask))
    }
}

/// `fields[i] ← h_{k_i} ⊗ M` for one chunk of kernels: per-kernel window
/// application (from either spectrum layout) followed by **one** batched
/// band inverse over the whole chunk, so the pool sees every column FFT
/// of the chunk at once instead of one narrow fan-out per kernel.
/// Bit-identical to the sequential per-kernel transforms (see
/// [`lsopc_fft::Fft2d::inverse_band_batch`]), so the default dense path
/// stays byte-for-byte reproducible.
///
/// Returns the chunk's kernel indices with their fields, in ascending
/// kernel order — callers accumulate in that order, preserving the
/// [`fold_kernel_grids`] determinism contract.
pub(crate) fn batched_kernel_fields<T: Scalar>(
    ctx: &ParallelContext,
    fft: &lsopc_fft::Fft2d<T>,
    spectra: &EmbeddedSpectra<T>,
    range: Range<usize>,
    mhat: &MaskSpectrum<T>,
) -> (Vec<usize>, Vec<Grid<Complex<T>>>) {
    let (w, h) = spectra.dims();
    let ks: Vec<usize> = range.collect();
    let mut fields: Vec<Grid<Complex<T>>> = ks
        .iter()
        .map(|&k| {
            let mut f = Grid::new(w, h, Complex::<T>::ZERO);
            match mhat {
                MaskSpectrum::Dense(m) => spectra.apply_window_into(k, m, &mut f),
                MaskSpectrum::Half(m) => spectra.apply_window_into_half(k, m, &mut f),
            }
            f
        })
        .collect();
    let cols: Vec<&[usize]> = ks.iter().map(|&k| spectra.cols(k)).collect();
    fft.inverse_band_batch_with(ctx, &mut fields, &cols);
    (ks, fields)
}

/// A compute backend for the Hopkins imaging sum and its adjoint.
///
/// Implementations must produce identical results up to floating-point
/// rounding; they differ only in speed:
///
/// * [`ReferenceBackend`] — direct spatial convolution (tests only);
/// * [`FftBackend`] — per-kernel FFT convolution (the paper's CPU path);
/// * [`crate::AcceleratedBackend`] — band-limit-aware batched path (the
///   paper's GPU path, reproduced on CPU).
///
/// The trait is generic over the scalar precision `T` the convolutions
/// run at (`f64` default). A backend may implement it at several
/// precisions; [`crate::MixedBackend`] implements `SimBackend<f64>`
/// while computing its transforms in f32 internally.
pub trait SimBackend<T: Scalar = f64>: Send + Sync + std::fmt::Debug {
    /// Human-readable backend name for reports.
    fn name(&self) -> &'static str;

    /// The aerial image `I = Σ_k μ_k |h_k ⊗ M|²` (paper Eq. (1)).
    ///
    /// # Panics
    ///
    /// Implementations panic if the mask dimensions are not powers of two
    /// or are too small for the kernel band.
    fn aerial_image(&self, kernels: &KernelSet<T>, mask: &Grid<T>) -> Grid<T>;

    /// The adjoint (gradient) map of the aerial image: given the
    /// sensitivity field `z = ∂L/∂I`, returns
    ///
    /// ```text
    /// ∂L/∂M = 2 Σ_k μ_k · Re{ h_k† ⊗ (z ⊙ (h_k ⊗ M)) }
    /// ```
    ///
    /// which is the inner structure of paper Eq. (11) (`h†` is the
    /// conjugate-flipped kernel; its spectrum is `conj(ĥ)`).
    ///
    /// # Panics
    ///
    /// Implementations panic if `mask` and `z` dimensions differ or are
    /// unsupported.
    fn gradient(&self, kernels: &KernelSet<T>, mask: &Grid<T>, z: &Grid<T>) -> Grid<T>;

    /// Injects shared cache handles (FFT plans, embedded spectra).
    /// Backends that consult caches store the bundle and route every
    /// lookup through it; the default no-op suits cache-free backends
    /// such as [`ReferenceBackend`].
    fn set_caches(&mut self, caches: &SimCaches) {
        let _ = caches;
    }
}

/// Direct spatial-domain convolution, O(N⁴) per kernel.
///
/// Only useful to pin the correctness of the fast backends on tiny grids;
/// never use it in real optimization runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReferenceBackend;

impl ReferenceBackend {
    /// Creates the reference backend.
    pub fn new() -> Self {
        Self
    }
}

impl<T: Scalar> SimBackend<T> for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn aerial_image(&self, kernels: &KernelSet<T>, mask: &Grid<T>) -> Grid<T> {
        let _span = lsopc_trace::span!("backend.reference.aerial");
        let (w, h) = mask.dims();
        let empty = Grid::new(w, h, T::ZERO);
        fold_kernel_grids(
            ParallelContext::global(),
            kernels.len(),
            &empty,
            |range, intensity| {
                for k in range {
                    let hk = kernels.spatial_kernel(k, w, h);
                    let field = convolve_direct(&hk, mask);
                    add_weighted_intensity(intensity, &field, kernels.weight(k));
                }
            },
        )
    }

    fn gradient(&self, kernels: &KernelSet<T>, mask: &Grid<T>, z: &Grid<T>) -> Grid<T> {
        let _span = lsopc_trace::span!("backend.reference.gradient");
        assert_eq!(mask.dims(), z.dims(), "mask and z dimensions must match");
        let (w, h) = mask.dims();
        let empty = Grid::new(w, h, T::ZERO);
        let two = T::from_f64(2.0);
        fold_kernel_grids(
            ParallelContext::global(),
            kernels.len(),
            &empty,
            |range, grad| {
                for k in range {
                    let hk = kernels.spatial_kernel(k, w, h);
                    let e = convolve_direct(&hk, mask);
                    let wk = kernels.weight(k);
                    // G(u) += 2 μ_k Re{ Σ_x conj(h_k(x−u)) z(x) e_k(x) }.
                    for v in 0..h {
                        for u in 0..w {
                            let mut acc = Complex::<T>::ZERO;
                            for y in 0..h {
                                for x in 0..w {
                                    let hx = (x + w - u) % w;
                                    let hy = (y + h - v) % h;
                                    acc += hk[(hx, hy)].conj() * e[(x, y)].scale(z[(x, y)]);
                                }
                            }
                            grad[(u, v)] += two * wk * acc.re;
                        }
                    }
                }
            },
        )
    }
}

/// Cyclic convolution of a complex kernel with a real mask, direct sum.
fn convolve_direct<T: Scalar>(kernel: &Grid<Complex<T>>, mask: &Grid<T>) -> Grid<Complex<T>> {
    let (w, h) = mask.dims();
    Grid::from_fn(w, h, |x, y| {
        let mut acc = Complex::<T>::ZERO;
        for v in 0..h {
            for u in 0..w {
                let m = mask[(u, v)];
                if m != T::ZERO {
                    let kx = (x + w - u) % w;
                    let ky = (y + h - v) % h;
                    acc += kernel[(kx, ky)].scale(m);
                }
            }
        }
        acc
    })
}

/// Per-kernel FFT convolution — the paper's CPU implementation.
///
/// Each pass performs one FFT of the mask plus, per kernel, one inverse
/// FFT (aerial) or one inverse and one forward FFT (gradient). All plans
/// come from the process-wide [`lsopc_fft::plan`] cache and the embedded
/// kernel spectra from the per-`(KernelSet, grid size)`
/// [`SpectrumCache`], so repeated calls (the optimizer loop) never
/// rebuild twiddle tables or re-embed spectra. The per-kernel transforms
/// use the band-limited variants ([`lsopc_fft::Fft2d::inverse_band`] /
/// [`lsopc_fft::Fft2d::forward_band`]), which skip the spectrum columns
/// the band provably leaves zero — bit-identical to the dense transforms
/// on these inputs, just cheaper.
///
/// The per-kernel accumulation fans out over the shared
/// [`ParallelContext`] pool (see [`fold_kernel_grids`]); results are
/// bit-identical at every thread count.
#[derive(Debug, Default, Clone)]
pub struct FftBackend {
    /// `None` → [`ParallelContext::global`].
    ctx: Option<ParallelContext>,
    /// `None` → the process default ([`lsopc_fft::rfft_default`]).
    rfft: Option<bool>,
    /// Cache handles; defaults to the process globals.
    caches: SimCaches,
}

impl FftBackend {
    /// Creates the FFT backend on the process-global [`ParallelContext`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the FFT backend on an explicit context (tests and
    /// thread-count sweeps).
    pub fn with_context(ctx: ParallelContext) -> Self {
        Self {
            ctx: Some(ctx),
            ..Self::default()
        }
    }

    /// Overrides the rfft routing for this backend instance: `true` runs
    /// the mask → spectrum step through the real-input fast path
    /// ([`lsopc_fft::RfftPlan`], close to but not bit-identical with the
    /// dense path), `false` forces the dense path. Without an override
    /// the process default ([`lsopc_fft::rfft_default`]) decides.
    pub fn with_rfft(mut self, enabled: bool) -> Self {
        self.rfft = Some(enabled);
        self
    }

    fn ctx(&self) -> &ParallelContext {
        self.ctx
            .as_ref()
            .unwrap_or_else(|| ParallelContext::global())
    }

    fn rfft(&self) -> bool {
        self.rfft.unwrap_or_else(lsopc_fft::rfft_default)
    }
}

impl<T: Scalar> SimBackend<T> for FftBackend {
    fn name(&self) -> &'static str {
        "fft-cpu"
    }

    fn aerial_image(&self, kernels: &KernelSet<T>, mask: &Grid<T>) -> Grid<T> {
        let _span = lsopc_trace::span!("backend.fft.aerial");
        let (w, h) = mask.dims();
        let fft = self.caches.plan_t::<T>(w, h);
        let spectra = self.caches.embedded(kernels, w, h);
        let mhat = mask_spectrum(&self.caches, &fft, mask, self.rfft());
        let ctx = self.ctx();
        let empty = Grid::new(w, h, T::ZERO);
        fold_kernel_grids(ctx, kernels.len(), &empty, |range, intensity| {
            // The chunk's fields come from one batched band inverse;
            // accumulation stays in ascending-k order (bit-identical to
            // the sequential per-kernel path).
            let (ks, fields) = batched_kernel_fields(ctx, &fft, &spectra, range, &mhat);
            for (&k, field) in ks.iter().zip(&fields) {
                add_weighted_intensity(intensity, field, kernels.weight(k));
            }
        })
    }

    fn gradient(&self, kernels: &KernelSet<T>, mask: &Grid<T>, z: &Grid<T>) -> Grid<T> {
        let _span = lsopc_trace::span!("backend.fft.gradient");
        assert_eq!(mask.dims(), z.dims(), "mask and z dimensions must match");
        let (w, h) = mask.dims();
        let fft = self.caches.plan_t::<T>(w, h);
        let spectra = self.caches.embedded(kernels, w, h);
        let mhat = mask_spectrum(&self.caches, &fft, mask, self.rfft());
        let ctx = self.ctx();
        let empty: Grid<Complex<T>> = Grid::new(w, h, Complex::<T>::ZERO);
        let mut acc = fold_kernel_grids(ctx, kernels.len(), &empty, |range, acc| {
            // e_k = h_k ⊗ M for the whole chunk, one batched inverse.
            let (ks, mut fields) = batched_kernel_fields(ctx, &fft, &spectra, range, &mhat);
            // W = z ⊙ e_k, then Ŵ (needed only on the band columns) —
            // again one batched forward across the chunk.
            for field in fields.iter_mut() {
                for (fv, &zv) in field.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    *fv = fv.scale(zv);
                }
            }
            let cols: Vec<&[usize]> = ks.iter().map(|&k| spectra.cols(k)).collect();
            fft.forward_band_batch_with(ctx, &mut fields, &cols);
            // acc += μ_k · conj(Ŝ_k) ⊙ Ŵ (only the band is non-zero).
            for (&k, field) in ks.iter().zip(&fields) {
                spectra.accumulate_adjoint(k, field, kernels.weight(k), acc);
            }
        });
        fft.inverse_band_with(ctx, &mut acc, spectra.all_cols());
        let two = T::from_f64(2.0);
        acc.map(|v| two * v.re)
    }

    fn set_caches(&mut self, caches: &SimCaches) {
        self.caches = caches.clone();
    }
}

/// `Ŝ_k ⊙ M̂` with the sparse band-limited window (full grid elsewhere
/// zero), as a freshly allocated dense grid.
///
/// Builds the embedding uncached — for one-shot kernel sets (e.g. the
/// fused kernel of [`crate::fused_aerial_image`]) whose ids would only
/// churn the [`SpectrumCache`]. Hot paths use the cache directly.
pub(crate) fn apply_kernel_window<T: Scalar>(
    kernels: &KernelSet<T>,
    k: usize,
    mhat: &Grid<Complex<T>>,
) -> Grid<Complex<T>> {
    let (w, h) = mhat.dims();
    let spectra = EmbeddedSpectra::new(kernels, w, h);
    let mut out = Grid::new(w, h, Complex::<T>::ZERO);
    spectra.apply_window_into(k, mhat, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn tiny_kernels() -> KernelSet {
        OpticsConfig::iccad2013()
            .with_field_nm(128.0)
            .with_kernel_count(4)
            .kernels(0.0)
    }

    fn test_mask(n: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| {
            if (n / 4..n / 2).contains(&x) && (n / 4..3 * n / 4).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    fn max_diff(a: &Grid<f64>, b: &Grid<f64>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fft_matches_reference_aerial() {
        let kernels = tiny_kernels();
        let mask = test_mask(16);
        let ia = ReferenceBackend::new().aerial_image(&kernels, &mask);
        let ib = FftBackend::new().aerial_image(&kernels, &mask);
        assert!(max_diff(&ia, &ib) < 1e-10, "diff {}", max_diff(&ia, &ib));
    }

    #[test]
    fn fft_matches_reference_gradient() {
        let kernels = tiny_kernels();
        let mask = test_mask(16);
        // Arbitrary smooth sensitivity field.
        let z = Grid::from_fn(16, 16, |x, y| {
            ((x as f64 * 0.7).sin() + (y as f64 * 0.3).cos()) * 0.1
        });
        let ga = ReferenceBackend::new().gradient(&kernels, &mask, &z);
        let gb = FftBackend::new().gradient(&kernels, &mask, &z);
        assert!(max_diff(&ga, &gb) < 1e-10, "diff {}", max_diff(&ga, &gb));
    }

    #[test]
    fn gradient_matches_finite_difference_of_linear_functional() {
        // L(M) = Σ c(x)·I(x) has dL/dI = c, so backend.gradient(·, ·, c)
        // must equal the finite difference of L under pixel perturbations.
        let kernels = tiny_kernels();
        let n = 16;
        let mask = test_mask(n);
        let c = Grid::from_fn(n, n, |x, y| 0.05 + 0.01 * ((x * 3 + y * 5) % 7) as f64);
        let backend = FftBackend::new();
        let grad = backend.gradient(&kernels, &mask, &c);

        let functional = |m: &Grid<f64>| -> f64 {
            let i = backend.aerial_image(&kernels, m);
            i.as_slice()
                .iter()
                .zip(c.as_slice())
                .map(|(iv, cv)| iv * cv)
                .sum()
        };
        let h = 1e-5;
        for &(px, py) in &[(4usize, 4usize), (8, 8), (12, 3), (0, 0)] {
            let mut plus = mask.clone();
            plus[(px, py)] += h;
            let mut minus = mask.clone();
            minus[(px, py)] -= h;
            let fd = (functional(&plus) - functional(&minus)) / (2.0 * h);
            let an = grad[(px, py)];
            assert!(
                (fd - an).abs() < 1e-6 * (1.0 + fd.abs()),
                "pixel ({px},{py}): fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn aerial_of_clear_mask_is_unity() {
        let kernels = tiny_kernels();
        let mask = Grid::new(16, 16, 1.0);
        let i = FftBackend::new().aerial_image(&kernels, &mask);
        for (_, _, &v) in i.iter_coords() {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn aerial_intensity_is_nonnegative() {
        let kernels = tiny_kernels();
        let mask = test_mask(32);
        let i = FftBackend::new().aerial_image(&kernels, &mask);
        assert!(i.as_slice().iter().all(|&v| v >= -1e-12));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn gradient_shape_mismatch_panics() {
        let kernels = tiny_kernels();
        let mask = Grid::new(16, 16, 0.0);
        let z = Grid::new(32, 32, 0.0);
        let _ = FftBackend::new().gradient(&kernels, &mask, &z);
    }

    #[test]
    fn rfft_path_matches_dense_path() {
        let kernels = tiny_kernels();
        let mask = test_mask(32);
        let dense = FftBackend::new().with_rfft(false);
        let rfft = FftBackend::new().with_rfft(true);
        let da = max_diff(
            &dense.aerial_image(&kernels, &mask),
            &rfft.aerial_image(&kernels, &mask),
        );
        assert!(da < 1e-12, "aerial rfft-vs-dense diff {da}");
        let z = Grid::from_fn(32, 32, |x, y| {
            0.1 * ((x as f64 * 0.7).sin() + (y as f64 * 0.3).cos())
        });
        let dg = max_diff(
            &dense.gradient(&kernels, &mask, &z),
            &rfft.gradient(&kernels, &mask, &z),
        );
        assert!(dg < 1e-12, "gradient rfft-vs-dense diff {dg}");
    }

    #[test]
    fn rfft_path_is_deterministic_across_thread_counts() {
        let kernels = tiny_kernels();
        let mask = test_mask(32);
        let serial = FftBackend::with_context(ParallelContext::new(1)).with_rfft(true);
        let threaded = FftBackend::with_context(ParallelContext::new(4)).with_rfft(true);
        assert_eq!(
            serial.aerial_image(&kernels, &mask).as_slice(),
            threaded.aerial_image(&kernels, &mask).as_slice(),
        );
        let z = Grid::from_fn(32, 32, |x, _| 0.01 * x as f64);
        assert_eq!(
            serial.gradient(&kernels, &mask, &z).as_slice(),
            threaded.gradient(&kernels, &mask, &z).as_slice(),
        );
    }
}
