//! The accelerated backend — this repository's substitute for the paper's
//! GPU implementation.
//!
//! The paper's GPU speedup (Section III-E) comes from three ingredients:
//! FFT-based convolution, precomputation across the kernel sum, and massive
//! parallelism. The first two are algorithmic and are reproduced exactly
//! here; the third is emulated with threads (see `DESIGN.md` for the full
//! substitution note).
//!
//! The algorithmic core exploits the band limit of the optical system.
//! Every kernel spectrum lives on an `S x S` window, so each coherent field
//! `e_k = h_k ⊗ M` is a band-limited function that is *exactly* represented
//! by its samples on a coarse `n_c x n_c` grid with `n_c ≥ 2S` — and the
//! aerial image `Σ μ_k |e_k|²`, band-limited to `2S − 1`, is too. The
//! backend therefore:
//!
//! * computes all per-kernel fields and the aerial image on the tiny
//!   coarse grid (K small IFFTs instead of K full-size ones), then
//!   upsamples the result spectrally with **one** full-size inverse FFT —
//!   this is exact, not an approximation;
//! * assembles the gradient's band-limited spectrum from small windowed
//!   convolutions, again finishing with a single full-size inverse FFT.
//!
//! Per pass this needs 2–3 full-size FFTs instead of `2K`, a ~20x
//! reduction at K = 24 that mirrors the paper's measured 71 % runtime
//! reduction in structure (Table II). Results match [`FftBackend`] to
//! rounding, which the test-suite pins.
//!
//! [`FftBackend`]: crate::FftBackend

use crate::backend::{fold_kernel_grids, mask_spectrum, MaskSpectrum, SimBackend};
use crate::caches::SimCaches;
use lsopc_fft::{wrap_index, HalfSpectrum};
use lsopc_grid::{Complex, Grid, Scalar};
use lsopc_optics::KernelSet;
use lsopc_parallel::ParallelContext;

/// Band-limit-aware batched simulation backend (the "GPU" path).
///
/// `threads` > 1 fans the per-kernel work out over the shared persistent
/// [`ParallelContext`] pool (no OS threads are spawned per call); on a
/// single-core host the algorithmic savings dominate.
///
/// # Example
///
/// ```
/// use lsopc_litho::{AcceleratedBackend, FftBackend, SimBackend};
/// use lsopc_grid::Grid;
/// use lsopc_optics::OpticsConfig;
///
/// let kernels = OpticsConfig::iccad2013()
///     .with_field_nm(256.0)
///     .with_kernel_count(6)
///     .kernels(0.0);
/// let mask = Grid::from_fn(64, 64, |x, y| if x > 20 && y > 30 { 1.0 } else { 0.0 });
/// let fast = AcceleratedBackend::new(1).aerial_image(&kernels, &mask);
/// let slow = FftBackend::new().aerial_image(&kernels, &mask);
/// let diff = fast
///     .as_slice()
///     .iter()
///     .zip(slow.as_slice())
///     .map(|(a, b)| (a - b).abs())
///     .fold(0.0, f64::max);
/// assert!(diff < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratedBackend {
    threads: usize,
    ctx: ParallelContext,
    /// `None` → the process default ([`lsopc_fft::rfft_default`]).
    rfft: Option<bool>,
    /// Cache handles; defaults to the process globals.
    caches: SimCaches,
}

impl AcceleratedBackend {
    /// Creates the backend with the given thread fan-out (1 = serial),
    /// capping the shared global pool at `threads` lanes. A request for 0
    /// threads degrades to 1 with a logged warning instead of panicking.
    pub fn new(threads: usize) -> Self {
        let threads = lsopc_parallel::sanitize_thread_count(threads, "AcceleratedBackend::new");
        Self {
            threads,
            ctx: ParallelContext::global().with_max_threads(threads),
            rfft: None,
            caches: SimCaches::default(),
        }
    }

    /// Creates the backend on an explicit context (tests and thread-count
    /// sweeps), fanning out over up to `ctx.threads()` lanes.
    pub fn with_context(ctx: ParallelContext) -> Self {
        Self {
            threads: ctx.threads(),
            ctx,
            rfft: None,
            caches: SimCaches::default(),
        }
    }

    /// Overrides the rfft routing for this backend instance: `true` runs
    /// every full-size real transform (the mask and sensitivity forwards
    /// and the two real-output finishing inverses) through the real-input
    /// fast path — in this backend the full-size transforms dominate, so
    /// this is where the rfft saving is largest. Without an override the
    /// process default ([`lsopc_fft::rfft_default`]) decides.
    pub fn with_rfft(mut self, enabled: bool) -> Self {
        self.rfft = Some(enabled);
        self
    }

    fn rfft(&self) -> bool {
        self.rfft.unwrap_or_else(lsopc_fft::rfft_default)
    }

    /// Requested thread fan-out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Coarse grid size for a kernel support `S`: the smallest power of
    /// two holding the doubled band, clamped to the full grid size.
    ///
    /// The clamp handles the degenerate small-grid case: when the full
    /// grid cannot hold the doubled band (`full < 2S − 1`), the "coarse"
    /// grid is the full grid and the band computation degenerates to the
    /// exact full-size one — the same aliasing [`FftBackend`] produces —
    /// instead of panicking while embedding an oversized window.
    ///
    /// [`FftBackend`]: crate::FftBackend
    fn coarse_size(support: usize, full: usize) -> usize {
        (2 * support).next_power_of_two().max(16).min(full)
    }
}

impl Default for AcceleratedBackend {
    fn default() -> Self {
        Self::new(1)
    }
}

/// Extracts the centred `size x size` window of a full DFT-layout spectrum
/// (offset 0 at the window centre).
fn centered_window<T: Scalar>(full: &Grid<Complex<T>>, size: usize) -> Grid<Complex<T>> {
    let (w, h) = full.dims();
    let c = (size / 2) as i64;
    Grid::from_fn(size, size, |i, j| {
        full[(wrap_index(i as i64 - c, w), wrap_index(j as i64 - c, h))]
    })
}

/// Embeds a centred window into an `w x h` DFT-layout spectrum.
fn embed_window<T: Scalar>(window: &Grid<Complex<T>>, w: usize, h: usize) -> Grid<Complex<T>> {
    let size = window.width();
    let c = (size / 2) as i64;
    let mut full = Grid::new(w, h, Complex::<T>::ZERO);
    for (i, j, &v) in window.iter_coords() {
        full[(wrap_index(i as i64 - c, w), wrap_index(j as i64 - c, h))] = v;
    }
    full
}

/// [`centered_window`] reading from either mask-spectrum layout; the half
/// layout reconstructs mirrored samples through
/// [`HalfSpectrum::at`]'s conjugate symmetry.
fn centered_window_of<T: Scalar>(mhat: &MaskSpectrum<T>, size: usize) -> Grid<Complex<T>> {
    match mhat {
        MaskSpectrum::Dense(full) => centered_window(full, size),
        MaskSpectrum::Half(half) => {
            let (w, h) = half.dims();
            let c = (size / 2) as i64;
            Grid::from_fn(size, size, |i, j| {
                half.at(wrap_index(i as i64 - c, w), wrap_index(j as i64 - c, h))
            })
        }
    }
}

/// [`embed_window`] into the Hermitian half layout: each window sample is
/// accumulated as its Hermitian projection, so the rfft inverse of the
/// result equals the real part the dense inverse would produce (see
/// [`HalfSpectrum::accumulate_hermitian`]).
fn embed_window_half<T: Scalar>(window: &Grid<Complex<T>>, w: usize, h: usize) -> HalfSpectrum<T> {
    let size = window.width();
    let c = (size / 2) as i64;
    let mut half = HalfSpectrum::new(w, h);
    for (i, j, &v) in window.iter_coords() {
        half.accumulate_hermitian(wrap_index(i as i64 - c, w), wrap_index(j as i64 - c, h), v);
    }
    half
}

impl<T: Scalar> SimBackend<T> for AcceleratedBackend {
    fn name(&self) -> &'static str {
        "accelerated"
    }

    fn aerial_image(&self, kernels: &KernelSet<T>, mask: &Grid<T>) -> Grid<T> {
        let _span = lsopc_trace::span!("backend.accel.aerial");
        let (w, h) = mask.dims();
        let s = kernels.support();
        assert!(
            w >= s && h >= s,
            "grid {w}x{h} too small for kernel support {s}"
        );
        let nc = Self::coarse_size(s, w.min(h));
        let use_rfft = self.rfft();
        let fft_full = self.caches.plan_t::<T>(w, h);
        let fft_coarse = self.caches.plan_t::<T>(nc, nc);

        // One full-size forward FFT, then only the band matters.
        let mhat = mask_spectrum(&self.caches, &fft_full, mask, use_rfft);
        let m_window = centered_window_of(&mhat, s);

        // Per-kernel coarse fields; e at full-grid sample points equals the
        // coarse IFFT scaled by nc²/(w·h).
        let scale = T::from_f64((nc * nc) as f64 / (w * h) as f64);
        let c = (s / 2) as i64;
        let empty = Grid::new(nc, nc, T::ZERO);
        let accumulate = |range: std::ops::Range<usize>, partial: &mut Grid<T>| {
            for k in range {
                let window = kernels.spectrum(k);
                let mut ehat = Grid::new(nc, nc, Complex::<T>::ZERO);
                for (i, j, &sv) in window.iter_coords() {
                    if sv == Complex::<T>::ZERO {
                        continue;
                    }
                    let fx = wrap_index(i as i64 - c, nc);
                    let fy = wrap_index(j as i64 - c, nc);
                    ehat[(fx, fy)] = sv * m_window[(i, j)];
                }
                fft_coarse.inverse(&mut ehat);
                let wk = kernels.weight(k) * scale * scale;
                for (dst, e) in partial.as_mut_slice().iter_mut().zip(ehat.as_slice()) {
                    *dst += wk * e.norm_sqr();
                }
            }
        };
        let coarse_intensity = fold_kernel_grids(&self.ctx, kernels.len(), &empty, accumulate);

        // Exact spectral upsampling: I is band-limited to 2S−1 < nc.
        let mut ihat_c = coarse_intensity.map(|&v| Complex::from_real(v));
        fft_coarse.forward(&mut ihat_c);
        let window = centered_window(&ihat_c, nc.min(2 * s - 1));
        let up = T::from_f64((w * h) as f64 / (nc * nc) as f64);
        if use_rfft {
            // Real-output finishing inverse straight from the half layout.
            let mut half = embed_window_half(&window, w, h);
            for v in half.as_mut_slice() {
                *v = v.scale(up);
            }
            return self
                .caches
                .rplan_t::<T>(w, h)
                .inverse_with(&self.ctx, &half);
        }
        let mut full = embed_window(&window, w, h);
        for v in full.as_mut_slice() {
            *v = v.scale(up);
        }
        fft_full.inverse(&mut full);
        full.map(|v| v.re)
    }

    fn gradient(&self, kernels: &KernelSet<T>, mask: &Grid<T>, z: &Grid<T>) -> Grid<T> {
        let _span = lsopc_trace::span!("backend.accel.gradient");
        assert_eq!(mask.dims(), z.dims(), "mask and z dimensions must match");
        let (w, h) = mask.dims();
        let s = kernels.support();
        assert!(
            w >= 2 * s - 1 && h >= 2 * s - 1,
            "grid {w}x{h} too small for doubled band {}",
            2 * s - 1
        );
        let use_rfft = self.rfft();
        let fft_full = self.caches.plan_t::<T>(w, h);

        // Two full-size forward FFTs: the mask and the sensitivity field.
        let mhat = mask_spectrum(&self.caches, &fft_full, mask, use_rfft);
        let m_window = centered_window_of(&mhat, s);
        let zhat = mask_spectrum(&self.caches, &fft_full, z, use_rfft);
        // Ẑ on the doubled band (κ − ν reaches offsets up to 2(S/2)·2).
        let big = 2 * s - 1;
        let z_big = centered_window_of(&zhat, big);
        let cb = (big / 2) as i64;
        let c = (s / 2) as i64;
        let inv_wh = T::from_f64(1.0 / (w * h) as f64);

        // Per kernel: X̂(κ) = (1/WH)·Σ_ν ê_k(ν)·Ẑ(κ−ν) on the S-window,
        // then acc(κ) += μ_k·conj(Ŝ_k(κ))·X̂(κ).
        let empty = Grid::new(s, s, Complex::<T>::ZERO);
        let accumulate = |range: std::ops::Range<usize>, acc: &mut Grid<Complex<T>>| {
            for k in range {
                let window = kernels.spectrum(k);
                // Sparse list of the kernel's non-zero band samples.
                let mut ehat: Vec<(i64, i64, Complex<T>)> = Vec::new();
                for (i, j, &sv) in window.iter_coords() {
                    if sv == Complex::<T>::ZERO {
                        continue;
                    }
                    ehat.push((i as i64 - c, j as i64 - c, sv * m_window[(i, j)]));
                }
                let wk = kernels.weight(k);
                for (i, j, &sk) in window.iter_coords() {
                    if sk == Complex::<T>::ZERO {
                        continue;
                    }
                    let kx = i as i64 - c;
                    let ky = j as i64 - c;
                    let mut x = Complex::<T>::ZERO;
                    for &(nx, ny, ev) in &ehat {
                        let zx = (kx - nx + cb) as usize;
                        let zy = (ky - ny + cb) as usize;
                        x += ev * z_big[(zx, zy)];
                    }
                    acc[(i, j)] += sk.conj() * x.scale(wk * inv_wh);
                }
            }
        };
        let acc_window = fold_kernel_grids(&self.ctx, kernels.len(), &empty, accumulate);

        // One full-size inverse FFT finishes the pass.
        let two = T::from_f64(2.0);
        if use_rfft {
            // The gradient is 2·Re(IFFT(acc)); the Hermitian projection
            // inside `embed_window_half` computes exactly that real part.
            let half = embed_window_half(&acc_window, w, h);
            let real = self
                .caches
                .rplan_t::<T>(w, h)
                .inverse_with(&self.ctx, &half);
            return real.map(|&v| two * v);
        }
        let mut full = embed_window(&acc_window, w, h);
        fft_full.inverse(&mut full);
        full.map(|v| two * v.re)
    }

    fn set_caches(&mut self, caches: &SimCaches) {
        self.caches = caches.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FftBackend;
    use lsopc_optics::OpticsConfig;

    fn kernels(field: f64, count: usize) -> KernelSet {
        OpticsConfig::iccad2013()
            .with_field_nm(field)
            .with_kernel_count(count)
            .kernels(0.0)
    }

    fn test_mask(n: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| {
            let a = (n / 8..n / 2).contains(&x) && (n / 4..n / 2).contains(&y);
            let b = (5 * n / 8..7 * n / 8).contains(&x) && (n / 8..7 * n / 8).contains(&y);
            if a || b {
                1.0
            } else {
                0.0
            }
        })
    }

    fn max_diff(a: &Grid<f64>, b: &Grid<f64>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn aerial_matches_fft_backend_exactly() {
        let ks = kernels(512.0, 8);
        let mask = test_mask(128);
        let fast = AcceleratedBackend::new(1).aerial_image(&ks, &mask);
        let slow = FftBackend::new().aerial_image(&ks, &mask);
        let d = max_diff(&fast, &slow);
        assert!(d < 1e-11, "aerial image diff {d}");
    }

    #[test]
    fn gradient_matches_fft_backend_exactly() {
        let ks = kernels(512.0, 8);
        let mask = test_mask(128);
        let z = Grid::from_fn(128, 128, |x, y| {
            0.02 * ((x as f64 * 0.21).sin() + (y as f64 * 0.13).cos())
        });
        let fast = AcceleratedBackend::new(1).gradient(&ks, &mask, &z);
        let slow = FftBackend::new().gradient(&ks, &mask, &z);
        let d = max_diff(&fast, &slow);
        assert!(d < 1e-11, "gradient diff {d}");
    }

    #[test]
    fn threaded_results_are_identical_to_serial() {
        let ks = kernels(512.0, 9);
        let mask = test_mask(64);
        let serial = AcceleratedBackend::new(1);
        let threaded = AcceleratedBackend::new(3);
        let d1 = max_diff(
            &serial.aerial_image(&ks, &mask),
            &threaded.aerial_image(&ks, &mask),
        );
        let z = Grid::from_fn(64, 64, |x, _| 0.01 * x as f64);
        let d2 = max_diff(
            &serial.gradient(&ks, &mask, &z),
            &threaded.gradient(&ks, &mask, &z),
        );
        assert!(d1 < 1e-12 && d2 < 1e-12, "d1={d1}, d2={d2}");
    }

    #[test]
    fn clear_field_is_unity() {
        let ks = kernels(512.0, 8);
        let mask = Grid::new(128, 128, 1.0);
        let i = AcceleratedBackend::new(1).aerial_image(&ks, &mask);
        for (_, _, &v) in i.iter_coords() {
            assert!((v - 1.0).abs() < 1e-9, "intensity {v}");
        }
    }

    #[test]
    fn small_grid_aerial_matches_fft_backend() {
        // 16×16 grid with the full 24-kernel set: the doubled band
        // (2S − 1) exceeds the grid, so `coarse_size` clamps to the full
        // grid and the backend degenerates to the exact full-size path
        // (including the same aliasing as FftBackend) instead of
        // panicking while embedding an oversized window.
        let ks = kernels(256.0, 24);
        let s = ks.support();
        assert!(
            s <= 16 && 2 * s - 1 > 16,
            "premise: the clamp must engage (S = {s})"
        );
        let mask = test_mask(16);
        let fast = AcceleratedBackend::new(2).aerial_image(&ks, &mask);
        let slow = FftBackend::new().aerial_image(&ks, &mask);
        let d = max_diff(&fast, &slow);
        assert!(d < 1e-11, "aerial image diff {d}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_undersized_grid() {
        let ks = kernels(2048.0, 4); // support 59 > 32
        let mask = Grid::new(32, 32, 0.0);
        let _ = AcceleratedBackend::new(1).aerial_image(&ks, &mask);
    }

    #[test]
    fn zero_threads_degrades_to_one() {
        let backend = AcceleratedBackend::new(0);
        assert_eq!(backend.threads(), 1);
        // The degraded backend still computes correctly.
        let ks = kernels(512.0, 4);
        let mask = test_mask(64);
        let a = backend.aerial_image(&ks, &mask);
        let b = AcceleratedBackend::new(1).aerial_image(&ks, &mask);
        assert_eq!(a, b);
    }

    #[test]
    fn rfft_path_matches_dense_path() {
        let ks = kernels(512.0, 8);
        let mask = test_mask(128);
        let dense = AcceleratedBackend::new(1).with_rfft(false);
        let rfft = AcceleratedBackend::new(1).with_rfft(true);
        let da = max_diff(
            &dense.aerial_image(&ks, &mask),
            &rfft.aerial_image(&ks, &mask),
        );
        assert!(da < 1e-11, "aerial rfft-vs-dense diff {da}");
        let z = Grid::from_fn(128, 128, |x, y| {
            0.02 * ((x as f64 * 0.21).sin() + (y as f64 * 0.13).cos())
        });
        let dg = max_diff(
            &dense.gradient(&ks, &mask, &z),
            &rfft.gradient(&ks, &mask, &z),
        );
        assert!(dg < 1e-11, "gradient rfft-vs-dense diff {dg}");
    }

    #[test]
    fn hot_paths_spawn_no_threads_after_construction() {
        // The pool spawns its workers once, at construction; repeated
        // aerial/gradient calls must never spawn again.
        let ctx = lsopc_parallel::ParallelContext::new(3);
        let backend = AcceleratedBackend::with_context(ctx.clone());
        let baseline = ctx.os_threads_spawned();
        assert!(baseline <= 2, "pool spawned {baseline} > workers");
        let ks = kernels(512.0, 8);
        let mask = test_mask(64);
        let z = Grid::from_fn(64, 64, |x, _| 0.01 * x as f64);
        for _ in 0..5 {
            let _ = backend.aerial_image(&ks, &mask);
            let _ = backend.gradient(&ks, &mask, &z);
        }
        assert!(
            ctx.os_threads_spawned() <= 2,
            "hot path spawned OS threads: {}",
            ctx.os_threads_spawned()
        );
    }
}
