//! Process-window analysis: CD measurement and focus–exposure matrices.
//!
//! The paper evaluates robustness through the PV band at two fixed
//! corners; production lithography characterizes masks more finely with a
//! focus–exposure matrix (FEM): the critical dimension (CD) of a feature
//! measured over a grid of (defocus, dose) conditions, from which the
//! process window — the set of conditions keeping CD within tolerance —
//! is read off. This module adds that capability as an extension.

use crate::{LithoSimulator, ProcessCondition};
use lsopc_grid::Grid;
use serde::{Deserialize, Serialize};

/// A measurement cut across a feature, in pixels.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutLine {
    /// Cut start (x, y) pixel.
    pub start: (usize, usize),
    /// Cut end (inclusive); must share a row or column with `start`.
    pub end: (usize, usize),
}

impl CutLine {
    /// A horizontal cut through `y`, spanning `x0..=x1`.
    pub fn horizontal(y: usize, x0: usize, x1: usize) -> Self {
        Self {
            start: (x0, y),
            end: (x1, y),
        }
    }

    /// A vertical cut through `x`, spanning `y0..=y1`.
    pub fn vertical(x: usize, y0: usize, y1: usize) -> Self {
        Self {
            start: (x, y0),
            end: (x, y1),
        }
    }

    /// The pixels on the cut.
    ///
    /// # Panics
    ///
    /// Panics if the cut is neither horizontal nor vertical.
    pub fn pixels(&self) -> Vec<(usize, usize)> {
        let (x0, y0) = self.start;
        let (x1, y1) = self.end;
        if y0 == y1 {
            (x0.min(x1)..=x0.max(x1)).map(|x| (x, y0)).collect()
        } else if x0 == x1 {
            (y0.min(y1)..=y0.max(y1)).map(|y| (x0, y)).collect()
        } else {
            panic!("cut line must be axis-parallel");
        }
    }
}

/// Measures the critical dimension (printed linewidth) along a cut, in
/// nanometres: the length of the longest printed run on the cut.
///
/// Returns 0 when nothing prints on the cut.
///
/// # Panics
///
/// Panics if the cut leaves the grid or is not axis-parallel.
pub fn measure_cd(printed: &Grid<f64>, cut: CutLine, pixel_nm: f64) -> f64 {
    let mut longest = 0usize;
    let mut current = 0usize;
    for (x, y) in cut.pixels() {
        if printed[(x, y)] >= 0.5 {
            current += 1;
            longest = longest.max(current);
        } else {
            current = 0;
        }
    }
    longest as f64 * pixel_nm
}

/// A focus–exposure matrix: CDs over a (defocus, dose) grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FocusExposureMatrix {
    /// Defocus values (nm), the matrix rows.
    pub focus_nm: Vec<f64>,
    /// Dose multipliers, the matrix columns.
    pub dose: Vec<f64>,
    /// `cd_nm[i][j]` = CD at `focus_nm[i]`, `dose[j]`.
    pub cd_nm: Vec<Vec<f64>>,
}

impl FocusExposureMatrix {
    /// Simulates the mask across the condition grid and measures the CD
    /// on the cut at every point.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty, or the mask/cut do not fit the
    /// simulator grid.
    pub fn measure(
        sim: &LithoSimulator,
        mask: &Grid<f64>,
        cut: CutLine,
        focus_nm: Vec<f64>,
        dose: Vec<f64>,
    ) -> Self {
        assert!(
            !focus_nm.is_empty() && !dose.is_empty(),
            "axes must be non-empty"
        );
        let mut cd_nm = Vec::with_capacity(focus_nm.len());
        for &f in &focus_nm {
            // One aerial image per focus; dose only rescales the resist
            // threshold, so all doses share the simulation.
            let aerial = sim.aerial(mask, ProcessCondition::new(f, 1.0));
            let row = dose
                .iter()
                .map(|&d| {
                    let printed = sim.resist().print(&aerial, d);
                    measure_cd(&printed, cut, sim.pixel_nm())
                })
                .collect();
            cd_nm.push(row);
        }
        Self {
            focus_nm,
            dose,
            cd_nm,
        }
    }

    /// Fraction of (focus, dose) points whose CD is within
    /// `± tolerance · target_cd_nm` of the target — a discrete
    /// process-window size.
    ///
    /// # Panics
    ///
    /// Panics unless `target_cd_nm > 0` and `0 < tolerance < 1`.
    pub fn window_fraction(&self, target_cd_nm: f64, tolerance: f64) -> f64 {
        assert!(target_cd_nm > 0.0, "target CD must be positive");
        assert!(
            (0.0..1.0).contains(&tolerance) && tolerance > 0.0,
            "tolerance must be in (0, 1)"
        );
        let lo = target_cd_nm * (1.0 - tolerance);
        let hi = target_cd_nm * (1.0 + tolerance);
        let total = self.cd_nm.len() * self.cd_nm[0].len();
        let ok = self
            .cd_nm
            .iter()
            .flatten()
            .filter(|&&cd| cd >= lo && cd <= hi)
            .count();
        ok as f64 / total as f64
    }

    /// Serializes the matrix to CSV (`focus_nm,dose,cd_nm` rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("focus_nm,dose,cd_nm\n");
        for (i, &f) in self.focus_nm.iter().enumerate() {
            for (j, &d) in self.dose.iter().enumerate() {
                out.push_str(&format!("{f},{d},{}\n", self.cd_nm[i][j]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(6), 64, 4.0)
            .expect("valid configuration")
    }

    fn wire() -> Grid<f64> {
        // A 72nm-wide vertical wire (18 px at 4 nm/px).
        Grid::from_fn(64, 64, |x, y| {
            if (23..41).contains(&x) && (8..56).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn cut_pixels_are_axis_parallel() {
        assert_eq!(
            CutLine::horizontal(3, 1, 3).pixels(),
            vec![(1, 3), (2, 3), (3, 3)]
        );
        assert_eq!(CutLine::vertical(2, 5, 6).pixels(), vec![(2, 5), (2, 6)]);
    }

    #[test]
    #[should_panic(expected = "axis-parallel")]
    fn diagonal_cut_panics() {
        let _ = CutLine {
            start: (0, 0),
            end: (3, 3),
        }
        .pixels();
    }

    #[test]
    fn cd_of_hard_print_tracks_mask_width() {
        let printed = wire();
        let cd = measure_cd(&printed, CutLine::horizontal(32, 0, 63), 4.0);
        assert_eq!(cd, 72.0);
        // Empty row → zero CD.
        let empty = Grid::new(64, 64, 0.0);
        assert_eq!(measure_cd(&empty, CutLine::horizontal(32, 0, 63), 4.0), 0.0);
    }

    #[test]
    fn cd_shrinks_with_lower_dose() {
        let sim = sim();
        let mask = wire();
        let fem = FocusExposureMatrix::measure(
            &sim,
            &mask,
            CutLine::horizontal(32, 0, 63),
            vec![0.0],
            vec![0.9, 1.0, 1.1],
        );
        let row = &fem.cd_nm[0];
        assert!(
            row[0] <= row[1] && row[1] <= row[2],
            "CD not monotone in dose: {row:?}"
        );
        assert!(row[2] > 0.0);
    }

    #[test]
    fn cd_degrades_with_defocus() {
        let sim = sim();
        let mask = wire();
        let fem = FocusExposureMatrix::measure(
            &sim,
            &mask,
            CutLine::horizontal(32, 0, 63),
            vec![0.0, 80.0],
            vec![1.0],
        );
        // Strong defocus shrinks (or at most keeps) the printed CD for a
        // bright-field wire.
        assert!(fem.cd_nm[1][0] <= fem.cd_nm[0][0] + 4.0);
    }

    #[test]
    fn window_fraction_counts_in_tolerance_points() {
        let fem = FocusExposureMatrix {
            focus_nm: vec![0.0, 25.0],
            dose: vec![0.98, 1.02],
            cd_nm: vec![vec![70.0, 74.0], vec![50.0, 71.0]],
        };
        // Target 72nm ± 10% → [64.8, 79.2]: three of four qualify.
        assert!((fem.window_fraction(72.0, 0.1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let fem = FocusExposureMatrix {
            focus_nm: vec![0.0],
            dose: vec![1.0, 1.1],
            cd_nm: vec![vec![70.0, 75.0]],
        };
        let csv = fem.to_csv();
        assert!(csv.starts_with("focus_nm,dose,cd_nm\n"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("0,1.1,75"));
    }
}
