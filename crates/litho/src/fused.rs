//! The paper's Eq. (17) "general kernel" fusion — implemented as the
//! documented approximation it is.
//!
//! Eq. (17) proposes precomputing `H = Σ_k μ_k·h_k` and convolving once:
//! `M ⊗ H = Σ_k μ_k (M ⊗ h_k)`. That identity holds for the *linear*
//! combination of convolutions, but the aerial image is quadratic:
//! `Σ_k μ_k |h_k ⊗ M|² ≠ |Σ_k μ_k h_k ⊗ M|²` for a partially coherent
//! system (the cross terms differ). The fused image is the fully coherent
//! approximation of the partially coherent one; [`fused_aerial_image`]
//! exposes it and the tests quantify its error. The production simulation
//! paths always use the exact SOCS sum — see `DESIGN.md` §7 for the
//! deviation note.

use lsopc_grid::{Grid, C64};
use lsopc_optics::KernelSet;

/// Builds the single fused kernel `H = Σ_k μ_k·h_k` of paper Eq. (17),
/// normalized to unit clear-field intensity.
///
/// # Example
///
/// ```
/// use lsopc_litho::fused_kernel;
/// use lsopc_optics::OpticsConfig;
///
/// let kernels = OpticsConfig::iccad2013()
///     .with_field_nm(256.0)
///     .with_kernel_count(8)
///     .kernels(0.0);
/// let fused = fused_kernel(&kernels);
/// assert_eq!(fused.len(), 1);
/// ```
pub fn fused_kernel(kernels: &KernelSet) -> KernelSet {
    let s = kernels.support();
    let mut spectrum = Grid::new(s, s, C64::ZERO);
    for k in 0..kernels.len() {
        let wk = kernels.weight(k);
        for (dst, &v) in spectrum
            .as_mut_slice()
            .iter_mut()
            .zip(kernels.spectrum(k).as_slice())
        {
            *dst += v.scale(wk);
        }
    }
    KernelSet::new(
        vec![spectrum],
        vec![1.0],
        kernels.period_nm(),
        kernels.defocus_nm(),
    )
    .normalized()
}

/// Aerial image under the fused single-kernel approximation,
/// `I ≈ |H ⊗ M|²`.
///
/// # Panics
///
/// Panics if the mask is smaller than the kernel band or not a power of
/// two.
pub fn fused_aerial_image(kernels: &KernelSet, mask: &Grid<f64>) -> Grid<f64> {
    let fused = fused_kernel(kernels);
    let (w, h) = mask.dims();
    let fft = lsopc_fft::plan(w, h);
    let mhat = fft.forward_real(mask);
    let mut field = crate::backend::apply_kernel_window(&fused, 0, &mhat);
    fft.inverse(&mut field);
    field.map(|e| e.norm_sqr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FftBackend, SimBackend};
    use lsopc_optics::OpticsConfig;

    fn kernels() -> KernelSet {
        OpticsConfig::iccad2013()
            .with_field_nm(256.0)
            .with_kernel_count(12)
            .kernels(0.0)
    }

    fn mask() -> Grid<f64> {
        Grid::from_fn(64, 64, |x, y| {
            if (24..40).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn fused_clear_field_is_unity() {
        let fused = fused_kernel(&kernels());
        assert!((fused.clear_field_intensity() - 1.0).abs() < 1e-12);
        let clear = Grid::new(64, 64, 1.0);
        let img = fused_aerial_image(&kernels(), &clear);
        for (_, _, &v) in img.iter_coords() {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fusion_is_an_approximation_not_an_identity() {
        // The fused (coherent) image must differ measurably from the exact
        // partially coherent SOCS image — this pins the deviation note in
        // DESIGN.md §7.
        let ks = kernels();
        let m = mask();
        let exact = FftBackend::new().aerial_image(&ks, &m);
        let fused = fused_aerial_image(&ks, &m);
        let max_err = exact
            .as_slice()
            .iter()
            .zip(fused.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_err > 1e-3, "fusion unexpectedly exact, err={max_err}");
    }

    #[test]
    fn fusion_error_is_bounded_for_large_features() {
        // For features well above the resolution limit the approximation
        // tracks the exact image to within tens of percent — usable as a
        // fast preview, not for sign-off.
        let ks = kernels();
        let m = mask();
        let exact = FftBackend::new().aerial_image(&ks, &m);
        let fused = fused_aerial_image(&ks, &m);
        let (mut num, mut den) = (0.0, 0.0);
        for (a, b) in exact.as_slice().iter().zip(fused.as_slice()) {
            num += (a - b) * (a - b);
            den += a * a;
        }
        let rel = (num / den).sqrt();
        assert!(rel < 0.8, "relative L2 error {rel}");
    }

    #[test]
    fn fused_image_is_nonnegative() {
        let img = fused_aerial_image(&kernels(), &mask());
        assert!(img.as_slice().iter().all(|&v| v >= 0.0));
    }
}
