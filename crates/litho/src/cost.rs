//! The process-window-aware cost function and its gradient
//! (paper Eq. (7), (9), (11)–(14)).

use crate::{LithoSimulator, ProcessCondition};
use lsopc_grid::{Grid, Scalar};
use serde::{Deserialize, Serialize};

/// Cost terms of one evaluation: `L = L_nom + w_pvb·L_pvb` (Eq. (13)).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Nominal-condition fidelity term `‖R − R*‖²` (Eq. (7)).
    pub nominal: f64,
    /// Process-variation term `‖R_in − R*‖² + ‖R_out − R*‖²` (Eq. (12)).
    pub pvb: f64,
    /// The PV-band weight `w_pvb` used.
    pub w_pvb: f64,
}

impl CostReport {
    /// The combined objective `L_nom + w_pvb·L_pvb`.
    pub fn total(&self) -> f64 {
        self.nominal + self.w_pvb * self.pvb
    }
}

/// Evaluates the total cost `L` and its mask gradient `G = ∂L/∂M`
/// (Eq. (13)–(14)) in one pass over the three process corners.
///
/// Per corner the pipeline is: aerial image `I`, sigmoid print `R`
/// (Eq. (8)), residual cost `w·‖R − R*‖²`, sensitivity
/// `z = 2w·(R − R*)·s·dose·R·(1−R) = ∂(w‖R−R*‖²)/∂I`, and the backend's
/// adjoint map (Eq. (11)). Corners with zero weight are skipped, so
/// `w_pvb = 0` reduces to plain nominal-cost ILT at a third of the cost.
///
/// # Panics
///
/// Panics if the mask or target dimensions do not match the simulator
/// grid, or if `w_pvb` is negative.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_grid::Grid;
/// use lsopc_litho::{cost_and_gradient, LithoSimulator};
/// use lsopc_optics::OpticsConfig;
///
/// let sim = LithoSimulator::from_optics(
///     &OpticsConfig::iccad2013().with_kernel_count(4),
///     64,
///     4.0,
/// )?;
/// let target = Grid::from_fn(64, 64, |x, y| {
///     if (24..40).contains(&x) && (16..48).contains(&y) { 1.0 } else { 0.0 }
/// });
/// let (report, gradient) = cost_and_gradient(&sim, &target, &target, 1.0);
/// assert!(report.total() > 0.0);
/// assert_eq!(gradient.dims(), (64, 64));
/// # Ok(())
/// # }
/// ```
pub fn cost_and_gradient<T: Scalar>(
    sim: &LithoSimulator<T>,
    mask: &Grid<T>,
    target: &Grid<T>,
    w_pvb: f64,
) -> (CostReport, Grid<T>) {
    let _span = lsopc_trace::span!("litho.cost_and_gradient");
    assert!(w_pvb >= 0.0, "w_pvb must be non-negative");
    assert_eq!(
        mask.dims(),
        target.dims(),
        "mask and target dimensions must match"
    );
    let corners = sim.corners();
    let weighted: [(ProcessCondition, f64, bool); 3] = [
        (corners.nominal, 1.0, true),
        (corners.inner, w_pvb, false),
        (corners.outer, w_pvb, false),
    ];
    let n = sim.grid_px();
    let mut gradient = Grid::new(n, n, T::ZERO);
    let mut report = CostReport {
        w_pvb,
        ..CostReport::default()
    };
    for (condition, weight, is_nominal) in weighted {
        if weight == 0.0 {
            continue;
        }
        let (cost, g) = corner_cost_and_gradient(sim, mask, target, condition, weight);
        if is_nominal {
            report.nominal = cost / weight.max(f64::MIN_POSITIVE);
        } else {
            report.pvb += cost / weight;
        }
        for (dst, &v) in gradient.as_mut_slice().iter_mut().zip(g.as_slice()) {
            *dst += v;
        }
    }
    #[cfg(feature = "fault-injection")]
    sim.apply_fault(&mut report, &mut gradient);
    (report, gradient)
}

/// Evaluates the total cost `L` only (no adjoint pass) — roughly half
/// the price of [`cost_and_gradient`], used by line searches.
///
/// # Panics
///
/// Panics under the same conditions as [`cost_and_gradient`].
pub fn cost_only<T: Scalar>(
    sim: &LithoSimulator<T>,
    mask: &Grid<T>,
    target: &Grid<T>,
    w_pvb: f64,
) -> CostReport {
    let _span = lsopc_trace::span!("litho.cost_only");
    assert!(w_pvb >= 0.0, "w_pvb must be non-negative");
    assert_eq!(
        mask.dims(),
        target.dims(),
        "mask and target dimensions must match"
    );
    let corners = sim.corners();
    let resist = sim.resist();
    let mut report = CostReport {
        w_pvb,
        ..CostReport::default()
    };
    for (condition, is_nominal) in [
        (corners.nominal, true),
        (corners.inner, false),
        (corners.outer, false),
    ] {
        if !is_nominal && w_pvb == 0.0 {
            continue;
        }
        let kernels = sim.kernels_for(condition.defocus_nm);
        let aerial = sim.backend().aerial_image(&kernels, mask);
        let printed = resist.print_soft(&aerial, condition.dose);
        // Accumulate the residual in `T` (at `f64` this is today's exact
        // sum); the report itself always stores `f64`.
        let cost = printed
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&r, &t)| (r - t) * (r - t))
            .sum::<T>()
            .to_f64();
        if is_nominal {
            report.nominal = cost;
        } else {
            report.pvb += cost;
        }
    }
    report
}

/// Cost `w·‖R − R*‖²` and gradient `∂(w·‖R − R*‖²)/∂M` for a single
/// process condition.
///
/// The building block of [`cost_and_gradient`]; exposed so that baseline
/// optimizers can implement their own corner schedules (e.g. simulating
/// only two corners per iteration like robust OPC [Kuang et al., DATE'15]).
///
/// # Panics
///
/// Panics if `mask` and `target` dimensions differ or do not match the
/// simulator, or if `weight` is not positive.
pub fn corner_cost_and_gradient<T: Scalar>(
    sim: &LithoSimulator<T>,
    mask: &Grid<T>,
    target: &Grid<T>,
    condition: ProcessCondition,
    weight: f64,
) -> (f64, Grid<T>) {
    let _span = lsopc_trace::span!("litho.corner_cost");
    assert!(weight > 0.0, "weight must be positive");
    assert_eq!(
        mask.dims(),
        target.dims(),
        "mask and target dimensions must match"
    );
    let resist = sim.resist();
    let kernels = sim.kernels_for(condition.defocus_nm);
    let aerial = sim.backend().aerial_image(&kernels, mask);
    let printed = resist.print_soft(&aerial, condition.dose);
    let cost = weight
        * printed
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&r, &t)| (r - t) * (r - t))
            .sum::<T>()
            .to_f64();
    // z = ∂(w·‖R − R*‖²)/∂I = 2w·(R − R*)·dR/dI.
    let two_w = T::from_f64(2.0 * weight);
    let z = printed.zip_map(target, |&r, &t| {
        two_w * (r - t) * resist.soft_derivative_t(r, condition.dose)
    });
    let gradient = sim.backend().gradient(&kernels, mask, &z);
    (cost, gradient)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 32, 8.0)
            .expect("valid configuration")
    }

    fn target() -> Grid<f64> {
        Grid::from_fn(32, 32, |x, y| {
            if (12..20).contains(&x) && (8..24).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let sim = sim();
        let target = target();
        let mask = target.clone();
        let w_pvb = 0.7;
        let (_, grad) = cost_and_gradient(&sim, &mask, &target, w_pvb);
        let cost_of = |m: &Grid<f64>| cost_and_gradient(&sim, m, &target, w_pvb).0.total();
        let h = 1e-5;
        for &(px, py) in &[(13usize, 9usize), (16, 16), (4, 4), (19, 23)] {
            let mut plus = mask.clone();
            plus[(px, py)] += h;
            let mut minus = mask.clone();
            minus[(px, py)] -= h;
            let fd = (cost_of(&plus) - cost_of(&minus)) / (2.0 * h);
            let an = grad[(px, py)];
            assert!(
                (fd - an).abs() < 1e-4 * (1.0 + fd.abs().max(an.abs())),
                "pixel ({px},{py}): fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn zero_pvb_weight_reduces_to_nominal() {
        let sim = sim();
        let target = target();
        let (report, _) = cost_and_gradient(&sim, &target, &target, 0.0);
        assert_eq!(report.pvb, 0.0);
        assert!(report.nominal > 0.0);
        assert_eq!(report.total(), report.nominal);
    }

    #[test]
    fn pvb_term_increases_total() {
        let sim = sim();
        let target = target();
        let (r0, _) = cost_and_gradient(&sim, &target, &target, 0.0);
        let (r1, _) = cost_and_gradient(&sim, &target, &target, 1.0);
        assert!(r1.total() > r0.total());
        assert!((r1.nominal - r0.nominal).abs() < 1e-12);
    }

    #[test]
    fn perfect_dark_target_with_dark_mask_has_zero_gradient_norm() {
        // An empty target with an empty mask is a stationary point: R ≈ 0
        // everywhere, (R − R*) ≈ 0.
        let sim = sim();
        let dark = Grid::new(32, 32, 0.0);
        let (report, grad) = cost_and_gradient(&sim, &dark, &dark, 1.0);
        assert!(report.total() < 1e-6);
        assert!(lsopc_grid::max_abs(&grad) < 1e-6);
    }

    #[test]
    fn gradient_points_downhill() {
        let sim = sim();
        let target = target();
        let mask = target.clone();
        let (before, grad) = cost_and_gradient(&sim, &mask, &target, 1.0);
        // Take a small step against the gradient.
        let step = 1e-3 / lsopc_grid::max_abs(&grad).max(1e-12);
        let moved = mask.zip_map(&grad, |&m, &g| m - step * g);
        let (after, _) = cost_and_gradient(&sim, &moved, &target, 1.0);
        assert!(
            after.total() < before.total(),
            "before={}, after={}",
            before.total(),
            after.total()
        );
    }
}

#[cfg(test)]
mod cost_only_tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    #[test]
    fn cost_only_matches_cost_and_gradient() {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 32, 8.0)
                .expect("valid configuration");
        let target = Grid::from_fn(32, 32, |x, y| {
            if (12..20).contains(&x) && (8..24).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        for w in [0.0, 0.5, 1.0] {
            let full = cost_and_gradient(&sim, &target, &target, w).0;
            let only = cost_only(&sim, &target, &target, w);
            assert!((full.total() - only.total()).abs() < 1e-9, "w={w}");
            assert!((full.nominal - only.nominal).abs() < 1e-9);
            assert!((full.pvb - only.pvb).abs() < 1e-9);
        }
    }
}
