//! Injectable cache handles for the simulation backends.
//!
//! Every FFT-based backend needs two long-lived caches: the FFT plan
//! cache ([`lsopc_fft::PlanCache`]) and the embedded-spectrum cache
//! ([`SpectrumCache`]). Historically both were process globals; that is
//! still the default, but multi-job hosts (the `lsopc-engine` crate)
//! want *explicit* handles so a set of jobs can share one cache pool —
//! amortizing plans and spectra across submissions — while staying
//! isolated from unrelated work in the same process.
//!
//! [`SimCaches`] bundles the two handles. `None` means "use the process
//! global", so a default-constructed value reproduces the historical
//! behavior exactly and costs nothing extra on the hot path (one branch
//! per lookup, then the same cache code either way).

use std::sync::Arc;

use crate::spectra::{EmbeddedSpectra, SpectrumCache};
use lsopc_fft::{Fft2d, PlanCache, RfftPlan};
use lsopc_grid::Scalar;
use lsopc_optics::KernelSet;

/// Shared cache handles injected into a [`crate::LithoSimulator`] and its
/// backend. Cloning shares the underlying caches (handles are `Arc`s).
#[derive(Debug, Default, Clone)]
pub struct SimCaches {
    /// `None` → [`PlanCache::global`].
    plans: Option<Arc<PlanCache>>,
    /// `None` → [`SpectrumCache::global`].
    spectra: Option<Arc<SpectrumCache>>,
}

impl SimCaches {
    /// Handles to the process-global caches — the historical default.
    pub fn shared() -> Self {
        Self::default()
    }

    /// A fresh, private cache pool independent of the process globals.
    /// Simulators built from clones of the returned value share it.
    pub fn private() -> Self {
        Self {
            plans: Some(Arc::new(PlanCache::new())),
            spectra: Some(Arc::new(SpectrumCache::new())),
        }
    }

    /// Builds a bundle from explicit cache handles.
    pub fn with_handles(plans: Arc<PlanCache>, spectra: Arc<SpectrumCache>) -> Self {
        Self {
            plans: Some(plans),
            spectra: Some(spectra),
        }
    }

    /// The FFT plan for a `width x height` grid at precision `T`, from
    /// the injected plan cache or the process-global one.
    pub fn plan_t<T: Scalar>(&self, width: usize, height: usize) -> Arc<Fft2d<T>> {
        match &self.plans {
            Some(cache) => cache.plan_t::<T>(width, height),
            None => lsopc_fft::plan_t::<T>(width, height),
        }
    }

    /// The real-input FFT plan for a `width x height` grid at precision
    /// `T`, from the injected plan cache or the process-global one.
    pub fn rplan_t<T: Scalar>(&self, width: usize, height: usize) -> Arc<RfftPlan<T>> {
        match &self.plans {
            Some(cache) => cache.rplan_t::<T>(width, height),
            None => lsopc_fft::rplan_t::<T>(width, height),
        }
    }

    /// The embedded spectra of `kernels` on a `width x height` grid, from
    /// the injected spectrum cache or the process-global one.
    pub(crate) fn embedded<T: Scalar>(
        &self,
        kernels: &KernelSet<T>,
        width: usize,
        height: usize,
    ) -> Arc<EmbeddedSpectra<T>> {
        match &self.spectra {
            Some(cache) => cache.embedded(kernels, width, height),
            None => SpectrumCache::global().embedded(kernels, width, height),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    #[test]
    fn default_handles_resolve_to_globals() {
        let caches = SimCaches::shared();
        let a = caches.plan_t::<f64>(16, 16);
        let b = lsopc_fft::plan_t::<f64>(16, 16);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn private_handles_are_isolated_but_clones_share() {
        let caches = SimCaches::private();
        let global = lsopc_fft::plan_t::<f64>(32, 32);
        let private = caches.plan_t::<f64>(32, 32);
        assert!(!Arc::ptr_eq(&global, &private));
        // A clone of the bundle resolves to the same cache entries.
        let again = caches.clone().plan_t::<f64>(32, 32);
        assert!(Arc::ptr_eq(&private, &again));
        // Spectrum cache likewise.
        let kernels = OpticsConfig::iccad2013()
            .with_field_nm(128.0)
            .with_kernel_count(2)
            .kernels(0.0);
        let s1 = caches.embedded(&kernels, 16, 16);
        let s2 = caches.clone().embedded(&kernels, 16, 16);
        assert!(Arc::ptr_eq(&s1, &s2));
        let sg = SpectrumCache::global().embedded(&kernels, 16, 16);
        assert!(!Arc::ptr_eq(&s1, &sg));
    }
}
