//! Cached sparse embedded kernel spectra.
//!
//! Every FFT-based backend needs each kernel's centred `S x S` spectrum
//! window embedded into full `w x h` DFT layout. Doing that per call
//! allocates a dense full-size grid per kernel and re-derives the same
//! wrap/centre arithmetic in several places. This module computes the
//! embedding once per `(KernelSet, grid size)` and stores it sparsely:
//!
//! * [`EmbeddedSpectra`] — per kernel, the non-zero band samples as
//!   `(linear index, value)` pairs plus the sorted list of full-grid
//!   columns the band touches (the input to [`Fft2d::inverse_band`] /
//!   [`Fft2d::forward_band`]);
//! * [`SpectrumCache`] — a process-global map keyed by
//!   `(KernelSet::id(), w, h, scalar type)`. Kernel spectra are immutable
//!   after construction (see [`KernelSet::id`]), so the id is a sound
//!   key; the scalar `TypeId` keeps f32 and f64 embeddings apart —
//!   [`KernelSet::cast`] preserves the id, so without the type in the
//!   key a cache warmed at f64 could serve an f32 run.
//!
//! [`KernelSet::cast`]: lsopc_optics::KernelSet::cast
//!
//! All band-window application and adjoint accumulation in this crate
//! goes through [`EmbeddedSpectra::apply_window_into`] and
//! [`EmbeddedSpectra::accumulate_adjoint`], so the wrap/centre logic
//! exists in exactly one place: [`EmbeddedSpectra::new`].
//!
//! [`Fft2d::inverse_band`]: lsopc_fft::Fft2d::inverse_band
//! [`Fft2d::forward_band`]: lsopc_fft::Fft2d::forward_band
//! [`KernelSet::id`]: lsopc_optics::KernelSet::id

use std::any::{Any, TypeId};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use lsopc_fft::{wrap_index, HalfSpectrum};
use lsopc_grid::{Complex, Grid, Scalar};
use lsopc_optics::KernelSet;
use parking_lot::RwLock;

/// One kernel's band window in full DFT layout, stored sparsely.
#[derive(Debug)]
struct SparseKernel<T: Scalar> {
    /// `(y * width + x, value)` for every non-zero window sample.
    entries: Vec<(usize, Complex<T>)>,
    /// Per entry: the linear index into a `(w/2 + 1) × h` half-spectrum
    /// layout ([`lsopc_fft::HalfSpectrum`]) holding that sample's mask
    /// value, and whether the stored value must be conjugated (the entry
    /// sits in the mirrored half). Precomputed so the rfft path pays no
    /// per-call wrap arithmetic.
    half_entries: Vec<(usize, bool)>,
    /// Sorted, deduplicated full-grid columns holding those samples.
    cols: Vec<usize>,
}

/// The spectra of one [`KernelSet`] embedded on one grid size.
#[derive(Debug)]
pub(crate) struct EmbeddedSpectra<T: Scalar = f64> {
    width: usize,
    height: usize,
    kernels: Vec<SparseKernel<T>>,
    /// Union of all kernels' columns (for band transforms of accumulated
    /// spectra such as the gradient's).
    all_cols: Vec<usize>,
}

impl<T: Scalar> EmbeddedSpectra<T> {
    /// Embeds every kernel of `kernels` into `width x height` DFT layout.
    ///
    /// # Panics
    ///
    /// Panics if the grid is too small to hold the band
    /// (`min(width, height) < kernels.support()`).
    pub(crate) fn new(kernels: &KernelSet<T>, width: usize, height: usize) -> Self {
        let s = kernels.support();
        assert!(
            width >= s && height >= s,
            "grid {width}x{height} too small for kernel support {s}"
        );
        let c = kernels.center() as i64;
        let hw = width / 2 + 1;
        let mut all_cols = BTreeSet::new();
        let sparse: Vec<SparseKernel<T>> = (0..kernels.len())
            .map(|k| {
                let window = kernels.spectrum(k);
                let mut entries = Vec::new();
                let mut half_entries = Vec::new();
                let mut cols = BTreeSet::new();
                for (i, j, &v) in window.iter_coords() {
                    if v == Complex::<T>::ZERO {
                        continue;
                    }
                    let fx = wrap_index(i as i64 - c, width);
                    let fy = wrap_index(j as i64 - c, height);
                    entries.push((fy * width + fx, v));
                    // The half layout stores kx ≤ w/2; mirrored entries
                    // read the conjugate of the stored sample.
                    let (hx, hy, conj) = if fx <= width / 2 {
                        (fx, fy, false)
                    } else {
                        (width - fx, (height - fy) % height, true)
                    };
                    half_entries.push((hy * hw + hx, conj));
                    cols.insert(fx);
                }
                all_cols.extend(cols.iter().copied());
                SparseKernel {
                    entries,
                    half_entries,
                    cols: cols.into_iter().collect(),
                }
            })
            .collect();
        Self {
            width,
            height,
            kernels: sparse,
            all_cols: all_cols.into_iter().collect(),
        }
    }

    /// Grid size these spectra are embedded on.
    pub(crate) fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Full-grid columns touched by kernel `k`'s band.
    pub(crate) fn cols(&self, k: usize) -> &[usize] {
        &self.kernels[k].cols
    }

    /// Full-grid columns touched by any kernel's band.
    pub(crate) fn all_cols(&self) -> &[usize] {
        &self.all_cols
    }

    /// Writes `out := Ŝ_k ⊙ mhat`: the band samples get the product, the
    /// rest of `out` is zeroed (so `out` may be a reused scratch grid).
    ///
    /// # Panics
    ///
    /// Panics if `mhat` or `out` does not match the embedded grid size.
    pub(crate) fn apply_window_into(
        &self,
        k: usize,
        mhat: &Grid<Complex<T>>,
        out: &mut Grid<Complex<T>>,
    ) {
        assert_eq!(mhat.dims(), self.dims(), "spectrum dimensions must match");
        assert_eq!(out.dims(), self.dims(), "output dimensions must match");
        out.as_mut_slice().fill(Complex::<T>::ZERO);
        let m = mhat.as_slice();
        let o = out.as_mut_slice();
        for &(idx, s) in &self.kernels[k].entries {
            o[idx] = s * m[idx];
        }
    }

    /// [`Self::apply_window_into`] reading the mask spectrum from the
    /// rfft half layout: `out := Ŝ_k ⊙ mhat` with mirrored samples
    /// reconstructed by conjugate symmetry through the precomputed
    /// `half_entries` table. `out` is still a full dense grid (the band
    /// inverse transform wants full layout); only the *input* spectrum is
    /// halved.
    ///
    /// # Panics
    ///
    /// Panics if `mhat` or `out` does not match the embedded grid size.
    pub(crate) fn apply_window_into_half(
        &self,
        k: usize,
        mhat: &HalfSpectrum<T>,
        out: &mut Grid<Complex<T>>,
    ) {
        assert_eq!(mhat.dims(), self.dims(), "spectrum dimensions must match");
        assert_eq!(out.dims(), self.dims(), "output dimensions must match");
        out.as_mut_slice().fill(Complex::<T>::ZERO);
        let m = mhat.as_slice();
        let o = out.as_mut_slice();
        let kern = &self.kernels[k];
        for (&(idx, s), &(hidx, conj)) in kern.entries.iter().zip(&kern.half_entries) {
            let mv = if conj { m[hidx].conj() } else { m[hidx] };
            o[idx] = s * mv;
        }
    }

    /// Accumulates the adjoint contribution of kernel `k`:
    /// `acc[κ] += conj(Ŝ_k[κ]) · weight · field[κ]` over the band samples.
    /// `field` is only read at band samples, so it may come out of
    /// [`Fft2d::forward_band`] (whose off-band columns are unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `field` or `acc` does not match the embedded grid size.
    ///
    /// [`Fft2d::forward_band`]: lsopc_fft::Fft2d::forward_band
    pub(crate) fn accumulate_adjoint(
        &self,
        k: usize,
        field: &Grid<Complex<T>>,
        weight: T,
        acc: &mut Grid<Complex<T>>,
    ) {
        assert_eq!(field.dims(), self.dims(), "field dimensions must match");
        assert_eq!(acc.dims(), self.dims(), "accumulator dimensions must match");
        let f = field.as_slice();
        let a = acc.as_mut_slice();
        for &(idx, s) in &self.kernels[k].entries {
            a[idx] += s.conj() * f[idx].scale(weight);
        }
    }

    /// Mixed-precision adjoint accumulation: each band sample's product
    /// `conj(Ŝ_k[κ]) · field[κ]` is computed at the transform precision
    /// `T`, widened to `f64`, scaled by the `f64` master weight and summed
    /// into an `f64` accumulator — so the sum over kernels never loses
    /// significance to `T`'s round-off.
    ///
    /// # Panics
    ///
    /// Panics if `field` or `acc` does not match the embedded grid size.
    pub(crate) fn accumulate_adjoint_upcast(
        &self,
        k: usize,
        field: &Grid<Complex<T>>,
        weight: f64,
        acc: &mut Grid<Complex<f64>>,
    ) {
        assert_eq!(field.dims(), self.dims(), "field dimensions must match");
        assert_eq!(acc.dims(), self.dims(), "accumulator dimensions must match");
        let f = field.as_slice();
        let a = acc.as_mut_slice();
        for &(idx, s) in &self.kernels[k].entries {
            a[idx] += (s.conj() * f[idx]).cast::<f64>().scale(weight);
        }
    }
}

/// Largest number of `(kernel set, grid size)` combinations kept before
/// the cache is wiped. Kernel-set ids are never reused, so long-running
/// processes that keep generating sets (e.g. per-defocus sweeps in tests)
/// would otherwise grow the map without bound. Rebuilding an entry is
/// cheap — O(K·S²) integer arithmetic, no transforms.
const SPECTRUM_CACHE_CAPACITY: usize = 64;

/// Cache of embedded kernel spectra keyed by
/// `(KernelSet::id(), width, height, scalar type)`.
///
/// Values are type-erased (`Arc<dyn Any>`) because one map serves every
/// scalar precision; the `TypeId` in the key guarantees each entry
/// downcasts back to the precision it was built at.
///
/// Backends default to the process-global instance ([`Self::global`]);
/// callers that want isolation or explicit sharing across simulators
/// (the `lsopc-engine` crate) build their own with [`Self::new`] and
/// inject it via `SimCaches`.
///
/// [`KernelSet::id`]: lsopc_optics::KernelSet::id
#[derive(Debug, Default)]
pub struct SpectrumCache {
    #[allow(clippy::type_complexity)]
    map: RwLock<HashMap<(u64, usize, usize, TypeId), Arc<dyn Any + Send + Sync>>>,
}

impl SpectrumCache {
    /// An empty cache, independent of the process-global one.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global instance shared by the simulation backends.
    pub fn global() -> &'static SpectrumCache {
        static GLOBAL: std::sync::LazyLock<SpectrumCache> =
            std::sync::LazyLock::new(SpectrumCache::default);
        &GLOBAL
    }

    /// Returns the embedded spectra of `kernels` on a `width x height`
    /// grid, building them on first use.
    ///
    /// # Panics
    ///
    /// Panics if the grid is too small for the kernel band.
    pub(crate) fn embedded<T: Scalar>(
        &self,
        kernels: &KernelSet<T>,
        width: usize,
        height: usize,
    ) -> Arc<EmbeddedSpectra<T>> {
        let key = (kernels.id(), width, height, TypeId::of::<T>());
        if let Some(spectra) = self.map.read().get(&key) {
            lsopc_trace::count("cache.spectra.hit", 1);
            return downcast_spectra(spectra);
        }
        lsopc_trace::count("cache.spectra.miss", 1);
        let mut map = self.map.write();
        if !map.contains_key(&key) && map.len() >= SPECTRUM_CACHE_CAPACITY {
            map.clear();
        }
        let erased = map
            .entry(key)
            .or_insert_with(|| Arc::new(EmbeddedSpectra::new(kernels, width, height)));
        downcast_spectra(erased)
    }

    /// Number of cached `(kernel set, grid size, precision)` combinations.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.read().len()
    }
}

/// Recovers the typed `Arc<EmbeddedSpectra<T>>` from a cache entry. The
/// key's `TypeId` guarantees the downcast succeeds.
fn downcast_spectra<T: Scalar>(erased: &Arc<dyn Any + Send + Sync>) -> Arc<EmbeddedSpectra<T>> {
    Arc::clone(erased)
        .downcast::<EmbeddedSpectra<T>>()
        .unwrap_or_else(|_| unreachable!("spectrum cache entry keyed by TypeId has that type"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_grid::C64;
    use lsopc_optics::OpticsConfig;

    fn kernels() -> KernelSet {
        OpticsConfig::iccad2013()
            .with_field_nm(256.0)
            .with_kernel_count(4)
            .kernels(0.0)
    }

    #[test]
    fn sparse_application_matches_dense_embedding() {
        let ks = kernels();
        let (w, h) = (32, 32);
        let spectra = EmbeddedSpectra::new(&ks, w, h);
        let mhat = Grid::from_fn(w, h, |x, y| C64::new(x as f64 + 0.5, y as f64 - 3.0));
        let mut sparse = Grid::new(w, h, C64::new(7.0, 7.0)); // scratch garbage
        for k in 0..ks.len() {
            spectra.apply_window_into(k, &mhat, &mut sparse);
            let dense = ks.embed_full(k, w, h).zip_map(&mhat, |&s, &m| s * m);
            assert_eq!(sparse.as_slice(), dense.as_slice());
        }
    }

    #[test]
    fn cols_cover_every_nonzero_column() {
        let ks = kernels();
        let spectra = EmbeddedSpectra::new(&ks, 64, 64);
        for k in 0..ks.len() {
            let dense = ks.embed_full(k, 64, 64);
            for x in 0..64 {
                let nonzero = (0..64).any(|y| dense[(x, y)] != C64::ZERO);
                let listed = spectra.cols(k).contains(&x);
                assert!(!nonzero || listed, "kernel {k}: column {x} missing");
                assert!(spectra.all_cols().contains(&x) || !listed);
            }
            // Sorted and deduplicated.
            assert!(spectra.cols(k).windows(2).all(|p| p[0] < p[1]));
        }
        assert!(spectra.all_cols().windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn half_window_application_matches_dense_on_real_masks() {
        // The rfft path feeds apply_window_into_half a HalfSpectrum of a
        // real mask; the result must match the dense-path application of
        // the same spectrum to FFT rounding.
        let ks = kernels();
        let (w, h) = (32, 32);
        let spectra = EmbeddedSpectra::new(&ks, w, h);
        let mask = Grid::from_fn(w, h, |x, y| {
            if (8..20).contains(&x) && (4..28).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let dense = lsopc_fft::plan(w, h).forward_real(&mask);
        let half = lsopc_fft::rplan(w, h).forward(&mask);
        let mut out_dense = Grid::new(w, h, C64::ZERO);
        let mut out_half = Grid::new(w, h, C64::new(9.0, 9.0)); // scratch garbage
        for k in 0..ks.len() {
            spectra.apply_window_into(k, &dense, &mut out_dense);
            spectra.apply_window_into_half(k, &half, &mut out_half);
            let err = out_dense
                .as_slice()
                .iter()
                .zip(out_half.as_slice())
                .map(|(a, b)| (*a - *b).norm())
                .fold(0.0, f64::max);
            assert!(err < 1e-12, "kernel {k}: dense vs half diff {err}");
        }
    }

    #[test]
    fn half_entries_mirror_positions_agree_with_hermitian_accessor() {
        // Bit-exact check of the precomputed table: applying the window
        // to a synthetic Hermitian-projected spectrum must equal applying
        // the dense window to its full expansion, sample for sample.
        let ks = kernels();
        let (w, h) = (32, 32);
        let spectra = EmbeddedSpectra::new(&ks, w, h);
        let arbitrary = Grid::from_fn(w, h, |x, y| C64::new(x as f64 - 3.5, 0.25 * y as f64));
        let half = lsopc_fft::HalfSpectrum::from_full_hermitian(&arbitrary);
        let full = half.to_full();
        let mut via_half = Grid::new(w, h, C64::ZERO);
        let mut via_dense = Grid::new(w, h, C64::ZERO);
        for k in 0..ks.len() {
            spectra.apply_window_into_half(k, &half, &mut via_half);
            spectra.apply_window_into(k, &full, &mut via_dense);
            assert_eq!(via_half.as_slice(), via_dense.as_slice(), "kernel {k}");
        }
    }

    #[test]
    fn adjoint_accumulation_matches_dense_formula() {
        let ks = kernels();
        let (w, h) = (32, 32);
        let spectra = EmbeddedSpectra::new(&ks, w, h);
        let field = Grid::from_fn(w, h, |x, y| C64::new(y as f64, x as f64 * 0.25));
        let mut acc = Grid::new(w, h, C64::ZERO);
        spectra.accumulate_adjoint(1, &field, 0.75, &mut acc);
        let dense = ks.embed_full(1, w, h);
        for (i, j, &s) in dense.iter_coords() {
            let expected = s.conj() * field[(i, j)].scale(0.75);
            assert_eq!(acc[(i, j)], expected);
        }
    }

    #[test]
    fn cache_returns_same_arc_per_set_and_size() {
        let ks = kernels();
        let cache = SpectrumCache::default();
        let a = cache.embedded(&ks, 32, 32);
        let b = cache.embedded(&ks, 32, 32);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.embedded(&ks, 64, 64);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        // A clone shares spectra, hence the cache entry.
        let d = cache.embedded(&ks.clone(), 32, 32);
        assert!(Arc::ptr_eq(&a, &d));
        // A truncated set has fresh spectra, hence a fresh entry.
        let e = cache.embedded(&ks.truncated(2), 32, 32);
        assert!(!Arc::ptr_eq(&a, &e));
    }

    #[test]
    fn cache_keys_on_precision_so_f64_never_serves_f32() {
        // Regression: `KernelSet::cast` keeps the id, so an f32 run on a
        // cast of an f64-warmed set must get its own embedding, not a
        // type-confused reuse of the f64 one.
        let ks = kernels();
        let ks32 = ks.cast::<f32>();
        assert_eq!(ks.id(), ks32.id(), "cast keeps the id (premise)");
        let cache = SpectrumCache::default();
        let warm64 = cache.embedded(&ks, 32, 32);
        let cold32 = cache.embedded(&ks32, 32, 32);
        assert_eq!(cache.len(), 2, "one entry per precision");
        // Back-to-back lookups at both precisions keep returning their
        // own entries.
        assert!(Arc::ptr_eq(&warm64, &cache.embedded(&ks, 32, 32)));
        assert!(Arc::ptr_eq(&cold32, &cache.embedded(&ks32, 32, 32)));
        assert_eq!(cache.len(), 2);
        // The f32 embedding is the rounded image of the f64 one.
        for k in 0..ks.len() {
            assert_eq!(warm64.cols(k), cold32.cols(k));
            for (a, b) in warm64.kernels[k]
                .entries
                .iter()
                .zip(&cold32.kernels[k].entries)
            {
                assert_eq!(a.0, b.0, "same sparse layout");
                assert_eq!(a.1.re as f32, b.1.re);
                assert_eq!(a.1.im as f32, b.1.im);
            }
        }
    }

    #[test]
    fn cache_eviction_keeps_outstanding_arcs_usable() {
        let cache = SpectrumCache::default();
        let first = kernels();
        let held = cache.embedded(&first, 32, 32);
        for _ in 0..SPECTRUM_CACHE_CAPACITY {
            cache.embedded(&kernels(), 32, 32);
        }
        assert!(cache.len() <= SPECTRUM_CACHE_CAPACITY);
        // The wiped entry is rebuilt as a distinct allocation; the held
        // Arc keeps working.
        let rebuilt = cache.embedded(&first, 32, 32);
        assert!(!Arc::ptr_eq(&held, &rebuilt));
        assert_eq!(held.cols(0), rebuilt.cols(0));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_undersized_grid() {
        let _ = EmbeddedSpectra::new(&kernels(), 4, 4);
    }
}
