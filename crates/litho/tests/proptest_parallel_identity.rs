//! Parallel == serial bit-identity for the simulation backends.
//!
//! `fold_kernel_grids` fixes the chunk boundaries and the partial-merge
//! order independently of the thread count, so `FftBackend` and
//! `AcceleratedBackend` must return *bit*-identical aerial images and
//! gradients on 1, 2, 3 or 8 threads — including thread counts above the
//! kernel count.

use lsopc_grid::Grid;
use lsopc_litho::{AcceleratedBackend, FftBackend, SimBackend};
use lsopc_optics::{KernelSet, OpticsConfig};
use lsopc_parallel::ParallelContext;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

fn contexts() -> &'static [ParallelContext] {
    static CTXS: OnceLock<Vec<ParallelContext>> = OnceLock::new();
    CTXS.get_or_init(|| [1usize, 2, 3, 8].map(ParallelContext::new).to_vec())
}

fn kernels(count: usize) -> KernelSet {
    OpticsConfig::iccad2013()
        .with_field_nm(256.0)
        .with_kernel_count(count)
        .kernels(0.0)
}

fn rand_mask(n: usize, seed: u64) -> Grid<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Grid::from_fn(n, n, |_, _| {
        if rng.gen_range(0.0..1.0) < 0.3 {
            1.0
        } else {
            0.0
        }
    })
}

fn rand_z(n: usize, seed: u64) -> Grid<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Grid::from_fn(n, n, |_, _| rng.gen_range(-0.1..0.1))
}

fn assert_bits_equal(a: &Grid<f64>, b: &Grid<f64>) -> Result<(), TestCaseError> {
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// FftBackend aerial + gradient are thread-count invariant.
    #[test]
    fn fft_backend_is_thread_count_invariant(
        kcount in 2usize..=6,
        seed in any::<u64>(),
    ) {
        let ks = kernels(kcount);
        let mask = rand_mask(64, seed);
        let z = rand_z(64, seed.wrapping_add(1));
        let reference = FftBackend::with_context(contexts()[0].clone());
        let aerial_ref = reference.aerial_image(&ks, &mask);
        let grad_ref = reference.gradient(&ks, &mask, &z);
        for ctx in &contexts()[1..] {
            let backend = FftBackend::with_context(ctx.clone());
            assert_bits_equal(&aerial_ref, &backend.aerial_image(&ks, &mask))?;
            assert_bits_equal(&grad_ref, &backend.gradient(&ks, &mask, &z))?;
        }
    }

    /// AcceleratedBackend aerial + gradient are thread-count invariant.
    #[test]
    fn accelerated_backend_is_thread_count_invariant(
        kcount in 2usize..=6,
        seed in any::<u64>(),
    ) {
        let ks = kernels(kcount);
        let mask = rand_mask(64, seed);
        let z = rand_z(64, seed.wrapping_add(1));
        let reference = AcceleratedBackend::with_context(contexts()[0].clone());
        let aerial_ref = reference.aerial_image(&ks, &mask);
        let grad_ref = reference.gradient(&ks, &mask, &z);
        for ctx in &contexts()[1..] {
            let backend = AcceleratedBackend::with_context(ctx.clone());
            assert_bits_equal(&aerial_ref, &backend.aerial_image(&ks, &mask))?;
            assert_bits_equal(&grad_ref, &backend.gradient(&ks, &mask, &z))?;
        }
    }
}
