//! Property tests pinning the cached, band-limited FFT backend to a
//! cache-free dense reference — bit for bit, not just to a tolerance.
//!
//! The dense reference below rebuilds its plan per call (`Fft2d::new`),
//! embeds each kernel spectrum densely (`KernelSet::embed_full`) and runs
//! full transforms, exactly like the backend did before the caches. The
//! cached path reuses a shared plan, applies sparse cached spectra and
//! skips provably-zero spectrum columns — every one of which is an
//! exact-arithmetic rewrite, so the outputs must be identical floats.

use lsopc_fft::{wrap_index, Fft2d};
use lsopc_grid::{Grid, C64};
use lsopc_litho::{FftBackend, SimBackend};
use lsopc_optics::{KernelSet, OpticsConfig};
use proptest::prelude::*;

fn kernels(count: usize) -> KernelSet {
    OpticsConfig::iccad2013()
        .with_field_nm(128.0)
        .with_kernel_count(count)
        .kernels(0.0)
}

/// Uncached dense aerial image: fresh plan, dense embeddings, full FFTs.
fn dense_aerial(kernels: &KernelSet, mask: &Grid<f64>) -> Grid<f64> {
    let (w, h) = mask.dims();
    let fft = Fft2d::<f64>::new(w, h);
    let mhat = fft.forward_real(mask);
    let mut intensity = Grid::new(w, h, 0.0);
    for k in 0..kernels.len() {
        let mut field = kernels.embed_full(k, w, h).zip_map(&mhat, |&s, &m| s * m);
        fft.inverse(&mut field);
        let wk = kernels.weight(k);
        for (dst, e) in intensity.as_mut_slice().iter_mut().zip(field.as_slice()) {
            *dst += wk * e.norm_sqr();
        }
    }
    intensity
}

/// Uncached dense gradient: fresh plan, dense embeddings, full FFTs.
fn dense_gradient(kernels: &KernelSet, mask: &Grid<f64>, z: &Grid<f64>) -> Grid<f64> {
    let (w, h) = mask.dims();
    let fft = Fft2d::<f64>::new(w, h);
    let mhat = fft.forward_real(mask);
    let mut acc: Grid<C64> = Grid::new(w, h, C64::ZERO);
    let c = kernels.center() as i64;
    for k in 0..kernels.len() {
        let mut field = kernels.embed_full(k, w, h).zip_map(&mhat, |&s, &m| s * m);
        fft.inverse(&mut field);
        for (fv, &zv) in field.as_mut_slice().iter_mut().zip(z.as_slice()) {
            *fv = fv.scale(zv);
        }
        fft.forward(&mut field);
        let window = kernels.spectrum(k);
        let wk = kernels.weight(k);
        for (i, j, &s) in window.iter_coords() {
            if s == C64::ZERO {
                continue;
            }
            let idx = (wrap_index(i as i64 - c, w), wrap_index(j as i64 - c, h));
            acc[idx] += s.conj() * field[idx].scale(wk);
        }
    }
    fft.inverse(&mut acc);
    acc.map(|v| 2.0 * v.re)
}

fn rect_mask(n: usize, x0: usize, y0: usize, dx: usize, dy: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        if (x0..x0 + dx).contains(&x) && (y0..y0 + dy).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

proptest! {
    /// Cached + banded aerial image is bit-identical to the dense
    /// uncached reference for arbitrary rectangle masks and kernel
    /// counts.
    #[test]
    fn cached_aerial_is_bit_identical_to_uncached(
        count in 1usize..=6,
        x0 in 0usize..24,
        y0 in 0usize..24,
        dx in 1usize..=8,
        dy in 1usize..=8,
    ) {
        let ks = kernels(count);
        let mask = rect_mask(32, x0, y0, dx, dy);
        let cached = FftBackend::new().aerial_image(&ks, &mask);
        let dense = dense_aerial(&ks, &mask);
        prop_assert_eq!(cached, dense);
    }

    /// Cached + banded gradient is bit-identical to the dense uncached
    /// reference, including the sparse adjoint accumulation order.
    #[test]
    fn cached_gradient_is_bit_identical_to_uncached(
        count in 1usize..=6,
        x0 in 0usize..24,
        y0 in 0usize..24,
        dx in 1usize..=8,
        dy in 1usize..=8,
        phase in 0.0f64..6.0,
    ) {
        let ks = kernels(count);
        let mask = rect_mask(32, x0, y0, dx, dy);
        let z = Grid::from_fn(32, 32, |x, y| {
            0.05 * ((x as f64 * 0.4 + phase).sin() + (y as f64 * 0.7).cos())
        });
        let cached = FftBackend::new().gradient(&ks, &mask, &z);
        let dense = dense_gradient(&ks, &mask, &z);
        prop_assert_eq!(cached, dense);
    }

    /// Repeated cached calls are deterministic: the cache introduces no
    /// state that changes results between the first (cold) and later
    /// (warm) invocations.
    #[test]
    fn warm_cache_reproduces_cold_results(
        count in 1usize..=4,
        x0 in 0usize..24,
        y0 in 0usize..24,
    ) {
        let ks = kernels(count);
        let mask = rect_mask(32, x0, y0, 6, 6);
        let backend = FftBackend::new();
        let first = backend.aerial_image(&ks, &mask);
        let second = backend.aerial_image(&ks, &mask);
        prop_assert_eq!(first, second);
    }
}
