#!/usr/bin/env bash
# Repo-wide pre-merge checks: formatting, lints, and the full test suite
# (a superset of the tier-1 gate `cargo build --release && cargo test -q`).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, LSOPC_THREADS=1)"
LSOPC_THREADS=1 cargo test -q --workspace

echo "==> cargo test (workspace, LSOPC_THREADS=4)"
LSOPC_THREADS=4 cargo test -q --workspace

echo "==> cargo test -p lsopc-core --features fault-injection"
LSOPC_THREADS=4 cargo test -q -p lsopc-core --features fault-injection

echo "==> precision suite (f32/mixed tolerances + thread determinism)"
# The f32 and mixed paths must be deterministic per thread count; run the
# dedicated suite at both pool sizes on top of the workspace runs above.
LSOPC_THREADS=1 cargo test -q --test precision_tolerance
LSOPC_THREADS=4 cargo test -q --test precision_tolerance
LSOPC_THREADS=1 cargo test -q -p lsopc-litho mixed
LSOPC_THREADS=4 cargo test -q -p lsopc-litho mixed

echo "==> rfft suite (half-spectrum path vs dense oracle + golden hashes)"
# The opt-in rfft routing must track the dense path at every precision
# and stay bit-identical across thread counts; the default dense path
# must keep its golden f64 hashes with the routing code merely present.
LSOPC_THREADS=1 cargo test -q -p lsopc-fft --test proptest_rfft
LSOPC_THREADS=4 cargo test -q -p lsopc-fft --test proptest_rfft
LSOPC_THREADS=1 cargo test -q --test rfft_path
LSOPC_THREADS=4 cargo test -q --test rfft_path
LSOPC_THREADS=4 cargo test -q -p lsopc-core --test golden_f64

echo "==> warm-start suite (fingerprint invariance + thread determinism)"
# The coarse-to-fine schedule and the warm-start cache must keep the
# default path bit-identical (golden hashes above) and produce the same
# tiled masks at every pool size; the fingerprint proptests pin the
# translation-invariant keying.
LSOPC_THREADS=1 cargo test -q -p lsopc-core --test warmstart --test parallel_tiles
LSOPC_THREADS=4 cargo test -q -p lsopc-core --test warmstart --test parallel_tiles
LSOPC_THREADS=1 cargo test -q -p lsopc-core schedule
LSOPC_THREADS=4 cargo test -q -p lsopc-core schedule

echo "==> warm-start bench smoke (schedule + cache engage end to end)"
cargo bench -p lsopc-bench --bench warmstart -- --test

echo "==> kill/resume suite (checkpoint bit-identity at both pool sizes)"
# A run killed at iteration k and resumed from its checkpoint must
# reproduce the uninterrupted trajectory bit-for-bit at f64, on the
# plain, guarded, line-search and scheduled (coarse & fine) paths.
LSOPC_THREADS=1 cargo test -q -p lsopc-core --test resume_identity
LSOPC_THREADS=4 cargo test -q -p lsopc-core --test resume_identity

echo "==> process-fault suite (mid-pipeline cancel + corrupt checkpoints)"
# Cancellation fired from inside an evaluation must checkpoint and
# resume bitwise; truncated/byte-flipped checkpoints and damaged
# warm-start entries must be typed errors or warned misses, not panics.
LSOPC_THREADS=4 cargo test -q -p lsopc-core --features fault-injection --test process_fault

echo "==> resume bench smoke (checkpoint overhead pipeline runs)"
cargo bench -p lsopc-bench --bench resume -- --test

echo "==> engine suite (cache amortization + concurrent sessions)"
# The headless engine must amortize its shared caches across sequential
# jobs and keep concurrent sessions bit-identical with separated scoped
# trace streams, at both pool sizes.
LSOPC_THREADS=1 cargo test -q -p lsopc-engine
LSOPC_THREADS=4 cargo test -q -p lsopc-engine --test engine

echo "==> trace suite (overhead + determinism at both pool sizes)"
# The trace layer must only observe: tracing on leaves the optimizer
# bit-identical, the disabled path costs < 1% of an evaluation, and the
# histogram-registry-enabled path stays under its 10% bound.
LSOPC_THREADS=1 cargo test -q -p lsopc-core --test trace_determinism --test trace_overhead
LSOPC_THREADS=4 cargo test -q -p lsopc-core --test trace_determinism --test trace_overhead

echo "==> histogram suite (quantile oracle + merge + thread stability)"
# Histogram quantiles must stay within the documented 1/16 error bound
# against an exact oracle, merges must be order-independent, and
# recorded totals bit-stable at 1 and 4 recording threads.
LSOPC_THREADS=1 cargo test -q -p lsopc-trace
LSOPC_THREADS=4 cargo test -q -p lsopc-trace

echo "==> telemetry bench smoke (record cost + registry overhead pipeline)"
cargo bench -p lsopc-bench --bench telemetry -- --test

echo "==> analyzer golden gate (profile --trace -> lsopc analyze round trip)"
# A traced 3-iteration profile run must analyze back into a report that
# names the expected spans, cache counters, convergence summary and a
# stop-reason line; an unparseable report would fail the greps.
tmp_trace=$(mktemp /tmp/lsopc_check_trace.XXXXXX)
target/release/lsopc profile --pattern wire --grid 128 --kernels 4 --iters 3 \
  --trace "$tmp_trace" > /dev/null
report=$(target/release/lsopc analyze "$tmp_trace")
rm -f "$tmp_trace"
for needle in "events:" "optimize" "litho.cost_and_gradient" "cache." \
              "counters:" "convergence:" "stop reason:"; do
  if ! grep -q "$needle" <<< "$report"; then
    echo "error: analyzer report lacks \"$needle\":" >&2
    echo "$report" >&2
    exit 1
  fi
done

echo "==> bare f64 literal gate (generic precision paths)"
# Code generic over Scalar must route constants through T::from_f64;
# a suffixed f64 literal pins the precision silently. Deliberate
# f64-internal passes (e.g. the EDT) carry an `allow-f64` marker.
bad=$(awk '
  FNR == 1 { in_tests = 0 }
  /^#\[cfg\(test\)\]/ { in_tests = 1 }
  !in_tests && /[0-9]_?f64/ && !/allow-f64/ { print FILENAME ":" FNR ": " $0 }
' crates/litho/src/backend.rs crates/litho/src/accelerated.rs \
  crates/litho/src/spectra.rs crates/litho/src/resist.rs \
  crates/litho/src/cost.rs crates/levelset/src/*.rs crates/core/src/cg.rs)
if [ -n "$bad" ]; then
  echo "error: bare f64 literal in precision-generic code (use T::from_f64," >&2
  echo "or mark deliberate f64 internals with an allow-f64 comment):" >&2
  echo "$bad" >&2
  exit 1
fi

echo "==> library print gate (report via lsopc-trace, not bare prints)"
# Library crates must report through lsopc_trace::warn (structured, sink-
# routable) rather than bare println!/eprintln!. Exempt: the CLI front
# end (main.rs/commands.rs), the bench report binaries (src/bin/),
# #[cfg(test)] blocks, and deliberate sites carrying an `allow-print`
# marker on the same or the preceding line.
bad=$(find crates/*/src -name '*.rs' \
        ! -path 'crates/cli/src/main.rs' ! -path 'crates/cli/src/commands.rs' \
        ! -path 'crates/bench/src/bin/*' -print0 |
  xargs -0 awk '
    FNR == 1 { in_tests = 0; exempt = 0 }
    /^#\[cfg\(test\)\]/ { in_tests = 1 }
    /allow-print/ { exempt = 2 }
    !in_tests && exempt == 0 && /(^|[^a-zA-Z_"])e?print(ln)?!/ { print FILENAME ":" FNR ": " $0 }
    { if (exempt > 0) exempt-- }
  ')
if [ -n "$bad" ]; then
  echo "error: bare print in library code (use lsopc_trace::warn, or mark" >&2
  echo "a deliberate site with an allow-print comment):" >&2
  echo "$bad" >&2
  exit 1
fi

echo "==> CLI layering gate (front end talks to lsopc-engine only)"
# The CLI reaches simulators, caches and precision variants through the
# engine layer; a direct dependency on lsopc-fft or lsopc-litho would
# bypass the session/cache contract (DESIGN.md §16).
bad=$(grep -nE 'lsopc[-_](fft|litho)' crates/cli/Cargo.toml crates/cli/src/*.rs || true)
if [ -n "$bad" ]; then
  echo "error: crates/cli must not depend on lsopc-fft or lsopc-litho" >&2
  echo "directly (go through lsopc-engine):" >&2
  echo "$bad" >&2
  exit 1
fi

echo "==> CLI unwrap/expect gate"
# No unwrap()/expect( reachable from main on bad input: reject them in
# crates/cli/src non-test code (everything before the first #[cfg(test)]).
bad=$(awk '
  FNR == 1 { in_tests = 0 }
  /^#\[cfg\(test\)\]/ { in_tests = 1 }
  !in_tests && (/\.unwrap\(\)/ || /\.expect\(/) { print FILENAME ":" FNR ": " $0 }
' crates/cli/src/*.rs)
if [ -n "$bad" ]; then
  echo "error: unwrap()/expect( in CLI non-test code:" >&2
  echo "$bad" >&2
  exit 1
fi

echo "All checks passed."
