#!/usr/bin/env bash
# Repo-wide pre-merge checks: formatting, lints, and the full test suite
# (a superset of the tier-1 gate `cargo build --release && cargo test -q`).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, LSOPC_THREADS=1)"
LSOPC_THREADS=1 cargo test -q --workspace

echo "==> cargo test (workspace, LSOPC_THREADS=4)"
LSOPC_THREADS=4 cargo test -q --workspace

echo "All checks passed."
