#!/usr/bin/env bash
# Repo-wide pre-merge checks: formatting, lints, and the full test suite
# (a superset of the tier-1 gate `cargo build --release && cargo test -q`).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, LSOPC_THREADS=1)"
LSOPC_THREADS=1 cargo test -q --workspace

echo "==> cargo test (workspace, LSOPC_THREADS=4)"
LSOPC_THREADS=4 cargo test -q --workspace

echo "==> cargo test -p lsopc-core --features fault-injection"
LSOPC_THREADS=4 cargo test -q -p lsopc-core --features fault-injection

echo "==> CLI unwrap/expect gate"
# No unwrap()/expect( reachable from main on bad input: reject them in
# crates/cli/src non-test code (everything before the first #[cfg(test)]).
bad=$(awk '
  FNR == 1 { in_tests = 0 }
  /^#\[cfg\(test\)\]/ { in_tests = 1 }
  !in_tests && (/\.unwrap\(\)/ || /\.expect\(/) { print FILENAME ":" FNR ": " $0 }
' crates/cli/src/*.rs)
if [ -n "$bad" ]; then
  echo "error: unwrap()/expect( in CLI non-test code:" >&2
  echo "$bad" >&2
  exit 1
fi

echo "All checks passed."
