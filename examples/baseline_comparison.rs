//! Head-to-head comparison of the level-set method against the four
//! pixel-ILT baselines on one benchmark tile (a one-case preview of the
//! paper's Table I / Table II).
//!
//! ```text
//! cargo run --release --example baseline_comparison -- [--case 4] [--grid 256]
//! ```

use lsopc::prelude::*;
use lsopc_baselines::PixelIltMode;
use lsopc_metrics::evaluate_mask;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid_px = 256usize;
    let mut case_no = 4usize; // B4, the smallest tile
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--grid" => grid_px = it.next().and_then(|v| v.parse().ok()).unwrap_or(grid_px),
            "--case" => case_no = it.next().and_then(|v| v.parse().ok()).unwrap_or(case_no),
            _ => {}
        }
    }
    let pixel_nm = 2048.0 / grid_px as f64;
    let suite = Iccad2013Suite::new();
    let case = suite
        .cases()
        .get(case_no.saturating_sub(1))
        .cloned()
        .ok_or("case number out of range (1-10)")?;
    let layout = suite.layout(&case);
    println!(
        "case {} (pattern area {} nm²), grid {grid_px} px ({pixel_nm} nm/px)",
        case.name, case.target_area_nm2
    );

    let optics = OpticsConfig::iccad2013().with_kernel_count(12);
    let target = rasterize(&layout, grid_px, grid_px, pixel_nm);

    println!(
        "{:<14}{:>8}{:>12}{:>8}{:>10}{:>12}",
        "method", "#EPE", "PVB(nm²)", "shape", "RT(s)", "score"
    );

    let iters = 12;
    let baselines: Vec<Box<dyn MaskOptimizer>> = vec![
        Box::new(PixelIlt::new(PixelIltMode::Fast).with_iterations(iters)),
        Box::new(PixelIlt::new(PixelIltMode::Exact).with_iterations(iters)),
        Box::new(RobustOpc::new().with_iterations(iters)),
        Box::new(PvOpc::new().with_iterations(iters)),
    ];
    for baseline in &baselines {
        let sim = LithoSimulator::from_optics(&optics, grid_px, pixel_nm)?;
        let result = baseline.optimize(&sim, &target)?;
        let eval = evaluate_mask(&sim, &result.mask, &layout, &target);
        let score = eval.score(result.runtime_s);
        println!(
            "{:<14}{:>8}{:>12.0}{:>8}{:>10.2}{:>12.0}",
            baseline.name(),
            eval.epe.violations,
            eval.pvb_area_nm2,
            eval.shapes.total(),
            result.runtime_s,
            score.value()
        );
    }

    // The level-set method (accelerated backend).
    let sim = LithoSimulator::from_optics(&optics, grid_px, pixel_nm)?.with_accelerated_backend(1);
    let result = LevelSetIlt::builder()
        .max_iterations(iters)
        .build()
        .optimize(&sim, &target)?;
    let eval = evaluate_mask(&sim, &result.mask, &layout, &target);
    let score = eval.score(result.runtime_s);
    println!(
        "{:<14}{:>8}{:>12.0}{:>8}{:>10.2}{:>12.0}",
        "levelset",
        eval.epe.violations,
        eval.pvb_area_nm2,
        eval.shapes.total(),
        result.runtime_s,
        score.value()
    );
    Ok(())
}
