//! Full OPC flow with geometry export: target `.glp` in, optimized mask
//! `.glp` out, plus manufacturability metrics of the result.
//!
//! Writes `optimized_mask.glp` to the current directory.
//!
//! ```text
//! cargo run --release --example mask_export
//! ```

use lsopc::prelude::*;
use lsopc_geometry::{mask_to_polygons, polygons_to_layout, write_glp};
use lsopc_metrics::{MaskComplexity, MrcReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid_px = 128;
    let pixel_nm = 4.0;

    // The incoming design (would normally be parse_glp of a file).
    let mut design = Layout::new();
    design.name = Some("demo_m1".to_string());
    design.push(Rect::new(96, 96, 168, 416).into());
    design.push(Rect::new(232, 96, 304, 300).into());
    design.push(Rect::new(232, 360, 416, 416).into());

    let optics = OpticsConfig::iccad2013().with_kernel_count(12);
    let sim = LithoSimulator::from_optics(&optics, grid_px, pixel_nm)?.with_accelerated_backend(1);
    let target = rasterize(&design, grid_px, grid_px, pixel_nm);

    // Optimize with light curvature smoothing so the exported geometry is
    // manufacturable.
    let result = LevelSetIlt::builder()
        .max_iterations(25)
        .curvature_weight(0.2)
        .build()
        .optimize(&sim, &target)?;

    // Vectorize the optimized mask back into rectilinear polygons.
    let polygons = mask_to_polygons(&result.mask, pixel_nm);
    let mut mask_layout = polygons_to_layout(&polygons);
    mask_layout.name = Some("demo_m1_opc".to_string());
    std::fs::write("optimized_mask.glp", write_glp(&mask_layout))?;

    // Manufacturability of the exported mask.
    let complexity = MaskComplexity::measure(&result.mask);
    let mrc = MrcReport::check(&result.mask, 10, 10); // 40nm rules at 4nm/px
    println!(
        "optimized mask: {} polygons, {} vertices total",
        mask_layout.len(),
        polygons.iter().map(|p| p.vertices().len()).sum::<usize>()
    );
    println!(
        "complexity: {} fragments, perimeter {} px, jaggedness {:.2}",
        complexity.fragments, complexity.perimeter_px, complexity.jaggedness
    );
    println!(
        "MRC (40nm width/space): {} width + {} spacing violations",
        mrc.width_violations, mrc.spacing_violations
    );
    println!("wrote optimized_mask.glp ({} shapes)", mask_layout.len());

    // Round-trip sanity: the exported geometry re-rasterizes to the mask.
    let roundtrip = rasterize(&mask_layout, grid_px, grid_px, pixel_nm);
    let identical = roundtrip == result.mask;
    println!("glp round-trip reproduces the mask exactly: {identical}");
    Ok(())
}
