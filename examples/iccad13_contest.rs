//! Runs the level-set optimizer over the ICCAD 2013-style benchmark suite
//! and prints contest-format rows (the "Ours" column of the paper's
//! Table I).
//!
//! ```text
//! cargo run --release --example iccad13_contest -- [--grid 512] [--cases 1,2] [--iters 30]
//! ```

use lsopc::prelude::*;
use lsopc_metrics::evaluate_mask;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid_px = 256usize;
    let mut iters = 20usize;
    let mut kernels = 24usize;
    let mut case_filter: Vec<usize> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--grid" => grid_px = it.next().and_then(|v| v.parse().ok()).unwrap_or(grid_px),
            "--iters" => iters = it.next().and_then(|v| v.parse().ok()).unwrap_or(iters),
            "--kernels" => kernels = it.next().and_then(|v| v.parse().ok()).unwrap_or(kernels),
            "--cases" => {
                if let Some(list) = it.next() {
                    case_filter = list
                        .split(',')
                        .filter_map(|t| t.trim().parse::<usize>().ok())
                        .map(|i: usize| i.saturating_sub(1))
                        .collect();
                }
            }
            _ => {}
        }
    }
    let pixel_nm = 2048.0 / grid_px as f64;
    println!(
        "ICCAD 2013-style contest run: grid {grid_px} px ({pixel_nm} nm/px), K = {kernels}, N = {iters}"
    );
    println!(
        "{:<6}{:>12}{:>8}{:>12}{:>8}{:>10}{:>12}",
        "case", "area(nm²)", "#EPE", "PVB(nm²)", "shape", "RT(s)", "score"
    );

    let optics = OpticsConfig::iccad2013().with_kernel_count(kernels);
    let suite = Iccad2013Suite::new();
    let optimizer = LevelSetIlt::builder().max_iterations(iters).build();
    let mut total_score = 0.0;
    let mut ran = 0usize;
    for case in suite.cases() {
        if !case_filter.is_empty() && !case_filter.contains(&case.index) {
            continue;
        }
        let layout = suite.layout(case);
        let sim =
            LithoSimulator::from_optics(&optics, grid_px, pixel_nm)?.with_accelerated_backend(1);
        let target = rasterize(&layout, grid_px, grid_px, pixel_nm);
        let result = optimizer.optimize(&sim, &target)?;
        let eval = evaluate_mask(&sim, &result.mask, &layout, &target);
        let score = eval.score(result.runtime_s);
        println!(
            "{:<6}{:>12}{:>8}{:>12.0}{:>8}{:>10.1}{:>12.0}",
            case.name,
            case.target_area_nm2,
            eval.epe.violations,
            eval.pvb_area_nm2,
            eval.shapes.total(),
            result.runtime_s,
            score.value()
        );
        total_score += score.value();
        ran += 1;
    }
    if ran > 0 {
        println!(
            "{:<6}{:>12}{:>8}{:>12}{:>8}{:>10}{:>12.0}",
            "avg",
            "",
            "",
            "",
            "",
            "",
            total_score / ran as f64
        );
    }
    Ok(())
}
