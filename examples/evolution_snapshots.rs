//! Reproduces the paper's Fig. 2: the mask boundary evolving from the
//! initial target shape toward the optimized (OPC'd) shape.
//!
//! Writes `evolution_iterN.pgm` images plus a contour CSV to the current
//! directory.
//!
//! ```text
//! cargo run --release --example evolution_snapshots
//! ```

use lsopc::prelude::*;
use lsopc_geometry::extract_contours;
use lsopc_grid::write_pgm;
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid_px = 128;
    let pixel_nm = 4.0;

    // A T-shaped target — corners are where OPC has the most work to do.
    let mut layout = Layout::new();
    layout.push(Rect::new(120, 120, 392, 192).into()); // bar
    layout.push(Rect::new(220, 192, 292, 400).into()); // stem

    let optics = OpticsConfig::iccad2013().with_kernel_count(12);
    let sim = LithoSimulator::from_optics(&optics, grid_px, pixel_nm)?;
    let target = rasterize(&layout, grid_px, grid_px, pixel_nm);

    let result = LevelSetIlt::builder()
        .max_iterations(24)
        .snapshot_interval(6)
        .build()
        .optimize(&sim, &target)?;

    let mut csv = String::from("iteration,contour_id,x_px,y_px\n");
    for (iter, mask) in &result.snapshots {
        let path = format!("evolution_iter{iter}.pgm");
        write_pgm(mask, &path)?;
        let contours = extract_contours(mask, 0.5);
        for (cid, contour) in contours.iter().enumerate() {
            for p in &contour.points {
                let _ = writeln!(csv, "{iter},{cid},{:.2},{:.2}", p.x, p.y);
            }
        }
        println!(
            "iter {:>2}: mask area {:>6.0} px², {} contours -> {path}",
            iter,
            mask.sum(),
            contours.len()
        );
    }
    std::fs::write("evolution_contours.csv", csv)?;
    println!(
        "final cost {:.1} after {} iterations; see evolution_iter*.pgm (Fig. 2 analog)",
        result.final_cost(),
        result.iterations
    );
    Ok(())
}
