//! Quickstart: optimize a mask for a single wire and watch every contest
//! metric improve.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsopc::prelude::*;
use lsopc_metrics::evaluate_mask;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small 512nm field at 4nm/px keeps this example fast.
    let grid_px = 128;
    let pixel_nm = 4.0;

    // The target: an 80nm x 240nm vertical wire with a 100nm pad.
    let mut layout = Layout::new();
    layout.push(Rect::new(216, 120, 296, 360).into());
    layout.push(Rect::new(176, 360, 336, 440).into());

    // Build the optical model (ICCAD 2013 system, fewer kernels for speed)
    // and the simulator.
    let optics = OpticsConfig::iccad2013().with_kernel_count(12);
    let sim = LithoSimulator::from_optics(&optics, grid_px, pixel_nm)?;
    let target = rasterize(&layout, grid_px, grid_px, pixel_nm);

    // How does the *uncorrected* mask print?
    let before = evaluate_mask(&sim, &target, &layout, &target);
    println!(
        "before OPC: #EPE {:>3} / {:>3} probes, PVB {:>8.0} nm², shape violations {}",
        before.epe.violations,
        before.epe.total_probes,
        before.pvb_area_nm2,
        before.shapes.total()
    );

    // Run the level-set ILT optimizer (paper Algorithm 1).
    let result = LevelSetIlt::builder()
        .max_iterations(40)
        .pvb_weight(1.0)
        .build()
        .optimize(&sim, &target)?;
    println!(
        "optimized in {} iterations ({:.2}s), cost {:.1} -> {:.1}",
        result.iterations,
        result.runtime_s,
        result.history.first().expect("history").cost_total,
        result.final_cost()
    );

    // And the corrected mask?
    let after = evaluate_mask(&sim, &result.mask, &layout, &target);
    println!(
        "after  OPC: #EPE {:>3} / {:>3} probes, PVB {:>8.0} nm², shape violations {}",
        after.epe.violations,
        after.epe.total_probes,
        after.pvb_area_nm2,
        after.shapes.total()
    );
    println!(
        "score: {} -> {}",
        before.score(0.0).value().round(),
        after.score(result.runtime_s).value().round()
    );

    assert!(
        after.epe.violations <= before.epe.violations,
        "OPC should not increase EPE violations"
    );
    Ok(())
}
