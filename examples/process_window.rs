//! Reproduces the paper's Fig. 1 metrics: EPE probes along target edges
//! (Fig. 1(a)) and the PV band between the process-corner contours
//! (Fig. 1(b)), before and after level-set OPC.
//!
//! Writes `pvband_before.pgm` / `pvband_after.pgm` to the current
//! directory.
//!
//! ```text
//! cargo run --release --example process_window
//! ```

use lsopc::prelude::*;
use lsopc_fft::upsample_spectral;
use lsopc_grid::write_pgm;
use lsopc_metrics::evaluate_mask;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid_px = 128;
    let pixel_nm = 4.0;

    // Two parallel wires — the gap is where the process window bites.
    let mut layout = Layout::new();
    layout.push(Rect::new(152, 96, 232, 416).into());
    layout.push(Rect::new(296, 96, 376, 416).into());

    let optics = OpticsConfig::iccad2013().with_kernel_count(12);
    let sim = LithoSimulator::from_optics(&optics, grid_px, pixel_nm)?;
    let target = rasterize(&layout, grid_px, grid_px, pixel_nm);

    println!(
        "process corners: nominal {:?}, inner {:?}, outer {:?}",
        sim.corners().nominal,
        sim.corners().inner,
        sim.corners().outer
    );

    // --- Before OPC -------------------------------------------------------
    let before = evaluate_mask(&sim, &target, &layout, &target);
    write_pgm(&before.pvb_map, "pvband_before.pgm")?;
    println!("\nbefore OPC:");
    report(&before);

    // --- After OPC --------------------------------------------------------
    let result = LevelSetIlt::builder()
        .max_iterations(40)
        .build()
        .optimize(&sim, &target)?;
    let after = evaluate_mask(&sim, &result.mask, &layout, &target);
    write_pgm(&after.pvb_map, "pvband_after.pgm")?;
    println!(
        "\nafter OPC ({} iterations, {:.2}s):",
        result.iterations, result.runtime_s
    );
    report(&after);

    println!(
        "\nPVB reduced by {:.1}% (maps written to pvband_before.pgm / pvband_after.pgm)",
        100.0 * (1.0 - after.pvb_area_nm2 / before.pvb_area_nm2.max(1.0))
    );

    // Render the optimized aerial image at 1 nm/px via exact spectral
    // upsampling (aerial images are band-limited, so this is lossless).
    let aerial = sim.aerial(&result.mask, ProcessCondition::NOMINAL);
    let fine = upsample_spectral(&aerial, 4);
    write_pgm(&fine, "aerial_after_1nm.pgm")?;
    println!("aerial image rendered at 1 nm/px -> aerial_after_1nm.pgm");
    Ok(())
}

fn report(eval: &lsopc_metrics::MaskEvaluation) {
    println!(
        "  #EPE: {} of {} probes violate the 15nm threshold",
        eval.epe.violations, eval.epe.total_probes
    );
    // Fig. 1(a): a probe-by-probe view of the worst displacements.
    let mut worst: Vec<_> = eval
        .epe
        .measurements
        .iter()
        .filter_map(|m| m.displacement_nm.map(|d| (d.abs(), m.site.pos)))
        .collect();
    worst.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    for (d, pos) in worst.iter().take(3) {
        println!(
            "    displacement {d:.1} nm at ({:.0}, {:.0}) nm",
            pos.x, pos.y
        );
    }
    println!("  PV band: {:.0} nm²", eval.pvb_area_nm2);
    println!("  shape violations: {}", eval.shapes.total());
}
