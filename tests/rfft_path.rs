//! Acceptance for the opt-in real-input FFT routing (`with_rfft(true)`).
//!
//! The rfft path reorders floating-point work, so it is *not* bit-identical
//! to the dense complex path — but at f64 the deviation is pure round-off
//! and must stay far inside the f32 tolerances of DESIGN.md §11, and the
//! level-set optimizer must land on equivalent contest metrics. Every
//! precision (f64, f32, mixed) runs the short synthetic suite with the
//! routing enabled; thread-count determinism of the enabled path is pinned
//! bitwise.

use lsopc::prelude::*;
use lsopc_core::IltResult;
use lsopc_grid::Scalar;
use lsopc_litho::{AcceleratedBackend, MixedBackend, SimBackend};
use lsopc_metrics::evaluate_mask;
use lsopc_parallel::ParallelContext;

const GRID: usize = 128;
const PIXEL_NM: f64 = 4.0;
const ITERS: usize = 12;
const KERNELS: usize = 8;

fn layout() -> Layout {
    let mut layout = Layout::new();
    layout.push(Rect::new(152, 96, 232, 416).into());
    layout.push(Rect::new(296, 96, 376, 416).into());
    layout.push(Rect::new(96, 432, 416, 480).into());
    layout
}

fn optics() -> OpticsConfig {
    OpticsConfig::iccad2013().with_kernel_count(KERNELS)
}

fn ilt() -> LevelSetIlt {
    LevelSetIlt::builder().max_iterations(ITERS).build()
}

fn sim_t<T: Scalar>(backend: Box<dyn SimBackend<T>>) -> LithoSimulator<T> {
    LithoSimulator::<T>::from_optics(&optics(), GRID, PIXEL_NM)
        .expect("valid configuration")
        .with_backend(backend)
}

fn run_t<T: Scalar>(backend: Box<dyn SimBackend<T>>) -> IltResult<T> {
    let sim = sim_t(backend);
    let target = rasterize(&layout(), GRID, GRID, PIXEL_NM).map(|&v| T::from_f64(v));
    ilt().optimize(&sim, &target).expect("run completes")
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

#[test]
fn rfft_runs_match_dense_runs_within_tolerance_at_every_precision() {
    let layout = layout();
    let target = rasterize(&layout, GRID, GRID, PIXEL_NM);
    let scoring_sim = LithoSimulator::<f64>::from_optics(&optics(), GRID, PIXEL_NM)
        .expect("valid configuration")
        .with_accelerated_backend(2);

    let dense64 = run_t::<f64>(Box::new(AcceleratedBackend::new(2).with_rfft(false)));
    let rfft64 = run_t::<f64>(Box::new(AcceleratedBackend::new(2).with_rfft(true)));
    let rfft32 = run_t::<f32>(Box::new(AcceleratedBackend::new(2).with_rfft(true))).to_f64();
    let rfft_mixed = run_t::<f64>(Box::new(
        MixedBackend::with_context(ParallelContext::new(2)).with_rfft(true),
    ));

    // First-iteration cost: identical initial mask, pure forward-model
    // deviation. f64 rfft is round-off-level; f32/mixed get the §11
    // budgets, which the rfft reordering must not consume.
    let c0 = dense64.history[0].cost_total;
    assert!(
        rel_diff(rfft64.history[0].cost_total, c0) < 1e-9,
        "f64 rfft first cost {} vs dense {c0}",
        rfft64.history[0].cost_total
    );
    assert!(
        rel_diff(rfft32.history[0].cost_total, c0) < 1e-3,
        "f32 rfft first cost {} vs dense {c0}",
        rfft32.history[0].cost_total
    );
    assert!(
        rel_diff(rfft_mixed.history[0].cost_total, c0) < 1e-4,
        "mixed rfft first cost {} vs dense {c0}",
        rfft_mixed.history[0].cost_total
    );

    // Contest metrics, all scored by the same f64 evaluator.
    let e_dense = evaluate_mask(&scoring_sim, &dense64.mask, &layout, &target);
    for (name, r) in [
        ("f64+rfft", &rfft64),
        ("f32+rfft", &rfft32),
        ("mixed+rfft", &rfft_mixed),
    ] {
        let first = r.history.first().expect("history").cost_total;
        assert!(
            r.final_cost() < first,
            "{name} run did not improve: {first} -> {}",
            r.final_cost()
        );
        let e = evaluate_mask(&scoring_sim, &r.mask, &layout, &target);
        let d_epe = (e.epe.violations as i64 - e_dense.epe.violations as i64).abs();
        assert!(
            d_epe <= 3,
            "{name} EPE {} vs dense {} (tolerance ±3)",
            e.epe.violations,
            e_dense.epe.violations
        );
        assert!(
            rel_diff(e.pvb_area_nm2, e_dense.pvb_area_nm2) < 0.10,
            "{name} PVB {} vs dense {}",
            e.pvb_area_nm2,
            e_dense.pvb_area_nm2
        );
        assert!(
            rel_diff(e.score(0.0).value(), e_dense.score(0.0).value()) < 0.10,
            "{name} score {} vs dense {}",
            e.score(0.0).value(),
            e_dense.score(0.0).value()
        );
    }
}

#[test]
fn rfft_runs_are_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        run_t::<f64>(Box::new(
            AcceleratedBackend::with_context(ParallelContext::new(threads)).with_rfft(true),
        ))
    };
    let baseline = run(1);
    for threads in [2, 4] {
        let other = run(threads);
        assert_eq!(baseline.iterations, other.iterations, "@{threads} threads");
        for (i, (x, y)) in baseline
            .levelset
            .as_slice()
            .iter()
            .zip(other.levelset.as_slice())
            .enumerate()
        {
            assert!(
                x.to_bits() == y.to_bits(),
                "@{threads} threads: ψ cell {i} differs bitwise: {x} vs {y}"
            );
        }
        for (x, y) in baseline.history.iter().zip(&other.history) {
            assert_eq!(
                x.cost_total.to_bits(),
                y.cost_total.to_bits(),
                "@{threads} threads: iteration {} cost differs",
                x.iteration
            );
        }
    }
}
