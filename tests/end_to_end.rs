//! End-to-end integration: `.glp` text → layout → raster → level-set ILT
//! → contest metrics, across every crate in the workspace.

use lsopc::prelude::*;
use lsopc_geometry::{parse_glp, write_glp};
use lsopc_metrics::evaluate_mask;

const GRID: usize = 128;
const PIXEL_NM: f64 = 4.0;

fn simulator() -> LithoSimulator {
    LithoSimulator::from_optics(
        &OpticsConfig::iccad2013().with_kernel_count(8),
        GRID,
        PIXEL_NM,
    )
    .expect("valid configuration")
}

fn test_glp() -> &'static str {
    "BEGIN\n\
     CELL e2e\n\
     RECT 152 96 80 320 ;\n\
     RECT 296 96 80 320 ;\n\
     PGON 120 64 392 64 392 96 120 96 ;\n\
     END\n"
}

#[test]
fn glp_to_optimized_mask_improves_all_metrics() {
    let layout = parse_glp(test_glp()).expect("valid glp");
    assert_eq!(layout.len(), 3);
    let sim = simulator();
    let target = rasterize(&layout, GRID, GRID, PIXEL_NM);
    assert_eq!(
        target.sum() * PIXEL_NM * PIXEL_NM,
        layout.total_area() as f64
    );

    let before = evaluate_mask(&sim, &target, &layout, &target);
    let result = LevelSetIlt::builder()
        .max_iterations(20)
        .build()
        .optimize(&sim, &target)
        .expect("optimization runs");
    let after = evaluate_mask(&sim, &result.mask, &layout, &target);

    assert!(
        after.epe.violations <= before.epe.violations,
        "EPE regressed: {} -> {}",
        before.epe.violations,
        after.epe.violations
    );
    assert!(
        after.score(0.0).value() < before.score(0.0).value(),
        "score regressed: {} -> {}",
        before.score(0.0).value(),
        after.score(0.0).value()
    );
    // The optimized mask must differ from the target (OPC did something).
    assert_ne!(result.mask, target);
}

#[test]
fn glp_roundtrip_preserves_optimization_input() {
    let layout = parse_glp(test_glp()).expect("valid glp");
    let reparsed = parse_glp(&write_glp(&layout)).expect("roundtrip");
    assert_eq!(layout, reparsed);
    let a = rasterize(&layout, GRID, GRID, PIXEL_NM);
    let b = rasterize(&reparsed, GRID, GRID, PIXEL_NM);
    assert_eq!(a, b);
}

#[test]
fn optimized_mask_prints_closer_to_target_than_target_itself() {
    let layout = parse_glp(test_glp()).expect("valid glp");
    let sim = simulator();
    let target = rasterize(&layout, GRID, GRID, PIXEL_NM);
    let result = LevelSetIlt::builder()
        .max_iterations(20)
        .build()
        .optimize(&sim, &target)
        .expect("optimization runs");

    let printed_naive = sim.print(&target, ProcessCondition::NOMINAL);
    let printed_opc = sim.print(&result.mask, ProcessCondition::NOMINAL);
    let l2 = |a: &Grid<f64>, b: &Grid<f64>| -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum()
    };
    assert!(
        l2(&printed_opc, &target) < l2(&printed_naive, &target),
        "OPC print should be closer to target"
    );
}

#[test]
fn pvb_weight_trades_pvb_for_fidelity() {
    // Higher w_pvb should never give a (much) larger PV band on this
    // simple pattern.
    let layout = parse_glp(test_glp()).expect("valid glp");
    let sim = simulator();
    let target = rasterize(&layout, GRID, GRID, PIXEL_NM);
    let run = |w: f64| {
        let result = LevelSetIlt::builder()
            .max_iterations(15)
            .pvb_weight(w)
            .build()
            .optimize(&sim, &target)
            .expect("optimization runs");
        evaluate_mask(&sim, &result.mask, &layout, &target).pvb_area_nm2
    };
    let pvb_unaware = run(0.0);
    let pvb_aware = run(2.0);
    assert!(
        pvb_aware <= pvb_unaware * 1.1,
        "PV-aware run should not inflate PVB: {pvb_unaware} -> {pvb_aware}"
    );
}
