//! The CPU and accelerated ("GPU") backends must be interchangeable: the
//! whole optimizer, not just single passes, must produce identical masks.

use lsopc::prelude::*;

fn target() -> Grid<f64> {
    Grid::from_fn(128, 128, |x, y| {
        let wire = (52..76).contains(&x) && (24..104).contains(&y);
        let pad = (24..48).contains(&x) && (24..48).contains(&y);
        if wire || pad {
            1.0
        } else {
            0.0
        }
    })
}

fn run(sim: &LithoSimulator) -> lsopc_core::IltResult {
    LevelSetIlt::builder()
        .max_iterations(8)
        .build()
        .optimize(sim, &target())
        .expect("optimization runs")
}

#[test]
fn optimizer_masks_match_across_backends() {
    let optics = OpticsConfig::iccad2013().with_kernel_count(8);
    let cpu = LithoSimulator::from_optics(&optics, 128, 4.0).expect("valid");
    let gpu = LithoSimulator::from_optics(&optics, 128, 4.0)
        .expect("valid")
        .with_accelerated_backend(1);

    let a = run(&cpu);
    let b = run(&gpu);
    assert_eq!(a.mask, b.mask, "backends must agree on the final mask");
    for (x, y) in a.history.iter().zip(&b.history) {
        assert!(
            (x.cost_total - y.cost_total).abs() < 1e-6 * (1.0 + x.cost_total),
            "iteration {} cost diverged: {} vs {}",
            x.iteration,
            x.cost_total,
            y.cost_total
        );
    }
}

#[test]
fn threaded_accelerated_backend_matches_serial() {
    let optics = OpticsConfig::iccad2013().with_kernel_count(8);
    let serial = LithoSimulator::from_optics(&optics, 128, 4.0)
        .expect("valid")
        .with_accelerated_backend(1);
    let threaded = LithoSimulator::from_optics(&optics, 128, 4.0)
        .expect("valid")
        .with_accelerated_backend(4);
    assert_eq!(run(&serial).mask, run(&threaded).mask);
}

#[test]
fn prints_are_identical_across_backends_at_all_corners() {
    let optics = OpticsConfig::iccad2013().with_kernel_count(8);
    let cpu = LithoSimulator::from_optics(&optics, 128, 4.0).expect("valid");
    let gpu = LithoSimulator::from_optics(&optics, 128, 4.0)
        .expect("valid")
        .with_accelerated_backend(1);
    let mask = target();
    let a = cpu.print_corners(&mask);
    let b = gpu.print_corners(&mask);
    assert_eq!(a.nominal, b.nominal);
    assert_eq!(a.inner, b.inner);
    assert_eq!(a.outer, b.outer);
}
