//! The benchmark suite flows through the whole pipeline: synthetic
//! layouts rasterize, optimize and evaluate at a reduced scale.

use lsopc::prelude::*;
use lsopc_baselines::PixelIltMode;
use lsopc_metrics::evaluate_mask;

const GRID: usize = 256;

fn setup(case_index: usize) -> (LithoSimulator, Layout, Grid<f64>) {
    let suite = Iccad2013Suite::new();
    let case = suite.cases()[case_index].clone();
    let layout = suite.layout(&case);
    let pixel_nm = 2048.0 / GRID as f64;
    let sim = LithoSimulator::from_optics(
        &OpticsConfig::iccad2013().with_kernel_count(6),
        GRID,
        pixel_nm,
    )
    .expect("valid configuration")
    .with_accelerated_backend(1);
    let target = rasterize(&layout, GRID, GRID, pixel_nm);
    (sim, layout, target)
}

#[test]
fn b4_levelset_beats_uncorrected_mask() {
    let (sim, layout, target) = setup(3); // B4, the smallest tile
    let before = evaluate_mask(&sim, &target, &layout, &target);
    let result = LevelSetIlt::builder()
        .max_iterations(10)
        .build()
        .optimize(&sim, &target)
        .expect("optimization runs");
    let after = evaluate_mask(&sim, &result.mask, &layout, &target);
    assert!(after.score(0.0).value() <= before.score(0.0).value());
}

#[test]
fn all_ten_cases_rasterize_with_exact_area() {
    let suite = Iccad2013Suite::new();
    for (case, layout) in suite.all_layouts() {
        // 1 nm/px rasterization area equals the layout area exactly.
        let grid = rasterize(&layout, 2048, 2048, 1.0);
        assert_eq!(
            grid.sum() as i64,
            case.target_area_nm2,
            "{} raster area mismatch",
            case.name
        );
    }
}

#[test]
fn baseline_and_levelset_run_on_the_same_case() {
    let (sim, layout, target) = setup(9); // B10
    let baseline = PixelIlt::new(PixelIltMode::Fast)
        .with_iterations(6)
        .optimize(&sim, &target)
        .expect("baseline runs");
    let levelset = LevelSetIlt::builder()
        .max_iterations(6)
        .build()
        .optimize(&sim, &target)
        .expect("levelset runs");
    let uncorrected = evaluate_mask(&sim, &target, &layout, &target);
    let eval_b = evaluate_mask(&sim, &baseline.mask, &layout, &target);
    let eval_l = evaluate_mask(&sim, &levelset.mask, &layout, &target);
    // Neither optimizer may lose more features than the uncorrected mask
    // already does at this coarse scale, and the level-set method must
    // keep everything.
    assert!(
        eval_b.shapes.missing <= uncorrected.shapes.missing + 1,
        "baseline lost features: {} (uncorrected: {})",
        eval_b.shapes.missing,
        uncorrected.shapes.missing
    );
    assert_eq!(eval_l.shapes.missing, 0, "levelset lost features");
}

#[test]
fn suite_cases_are_deterministic_across_calls() {
    let a = Iccad2013Suite::new().layout(&Iccad2013Suite::new().cases()[1]);
    let b = Iccad2013Suite::new().layout(&Iccad2013Suite::new().cases()[1]);
    assert_eq!(a, b);
}
