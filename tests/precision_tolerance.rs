//! Cross-precision acceptance: the f32 and mixed pipelines must complete
//! the synthetic suite and land within documented tolerances of the f64
//! reference, and both must stay bit-identical across thread counts.
//!
//! Tolerances (see DESIGN.md §11): the level-set loop binarizes the mask
//! every iteration, so sub-ulp differences at the zero crossing can flip
//! individual cells and the runs *diverge discretely*, not smoothly.
//! Contest metrics therefore get integer/relative headroom rather than
//! ulp-level bounds:
//!
//! * first-iteration cost (identical initial mask, pure forward-model
//!   error): within 1e-3 relative for f32, 1e-4 for mixed;
//! * #EPE violations: within ±3 of the f64 run;
//! * PV band area and contest score: within 10% relative.

use lsopc::prelude::*;
use lsopc_core::IltResult;
use lsopc_litho::MixedBackend;
use lsopc_metrics::evaluate_mask;
use lsopc_parallel::ParallelContext;

const GRID: usize = 128;
const PIXEL_NM: f64 = 4.0;
const ITERS: usize = 12;
const KERNELS: usize = 8;

/// Two wires and a pad — the synthetic stand-in for a contest clip.
fn layout() -> Layout {
    let mut layout = Layout::new();
    layout.push(Rect::new(152, 96, 232, 416).into());
    layout.push(Rect::new(296, 96, 376, 416).into());
    layout.push(Rect::new(96, 432, 416, 480).into());
    layout
}

fn optics() -> OpticsConfig {
    OpticsConfig::iccad2013().with_kernel_count(KERNELS)
}

fn sim_f64(threads: usize) -> LithoSimulator {
    LithoSimulator::<f64>::from_optics(&optics(), GRID, PIXEL_NM)
        .expect("valid configuration")
        .with_accelerated_backend(threads)
}

fn ilt() -> LevelSetIlt {
    LevelSetIlt::builder().max_iterations(ITERS).build()
}

fn run_f32(threads: usize) -> IltResult<f32> {
    let sim = LithoSimulator::<f32>::from_optics(&optics(), GRID, PIXEL_NM)
        .expect("valid configuration")
        .with_accelerated_backend(threads);
    let target = rasterize(&layout(), GRID, GRID, PIXEL_NM).map(|&v| v as f32);
    ilt().optimize(&sim, &target).expect("f32 run completes")
}

fn run_mixed(ctx: ParallelContext) -> IltResult {
    let sim = LithoSimulator::<f64>::from_optics(&optics(), GRID, PIXEL_NM)
        .expect("valid configuration")
        .with_backend(Box::new(MixedBackend::with_context(ctx)));
    let target = rasterize(&layout(), GRID, GRID, PIXEL_NM);
    ilt().optimize(&sim, &target).expect("mixed run completes")
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-12)
}

#[test]
fn f32_and_mixed_complete_the_suite_within_tolerance() {
    let layout = layout();
    let target = rasterize(&layout, GRID, GRID, PIXEL_NM);
    let scoring_sim = sim_f64(2);

    let ref64 = ilt()
        .optimize(&scoring_sim, &target)
        .expect("f64 run completes");
    let f32run = run_f32(2).to_f64();
    let mixed = run_mixed(ParallelContext::new(2));

    // Every precision must actually optimize.
    for (name, r) in [("f64", &ref64), ("f32", &f32run), ("mixed", &mixed)] {
        let first = r.history.first().expect("history").cost_total;
        assert!(
            r.final_cost() < first,
            "{name} run did not improve: {first} -> {}",
            r.final_cost()
        );
        assert_eq!(r.history.len(), r.iterations, "{name} history complete");
    }

    // First-iteration cost: same initial mask, pure forward-model error.
    let c0 = ref64.history[0].cost_total;
    assert!(
        rel_diff(f32run.history[0].cost_total, c0) < 1e-3,
        "f32 first cost {} vs f64 {c0}",
        f32run.history[0].cost_total
    );
    assert!(
        rel_diff(mixed.history[0].cost_total, c0) < 1e-4,
        "mixed first cost {} vs f64 {c0}",
        mixed.history[0].cost_total
    );

    // Contest metrics, all scored by the same f64 evaluator.
    let e64 = evaluate_mask(&scoring_sim, &ref64.mask, &layout, &target);
    let e32 = evaluate_mask(&scoring_sim, &f32run.mask, &layout, &target);
    let emx = evaluate_mask(&scoring_sim, &mixed.mask, &layout, &target);
    for (name, e) in [("f32", &e32), ("mixed", &emx)] {
        let d_epe = (e.epe.violations as i64 - e64.epe.violations as i64).abs();
        assert!(
            d_epe <= 3,
            "{name} EPE {} vs f64 {} (tolerance ±3)",
            e.epe.violations,
            e64.epe.violations
        );
        assert!(
            rel_diff(e.pvb_area_nm2, e64.pvb_area_nm2) < 0.10,
            "{name} PVB {} vs f64 {}",
            e.pvb_area_nm2,
            e64.pvb_area_nm2
        );
        assert!(
            rel_diff(e.score(0.0).value(), e64.score(0.0).value()) < 0.10,
            "{name} score {} vs f64 {}",
            e.score(0.0).value(),
            e64.score(0.0).value()
        );
    }

    // The f32 mask must be exactly binary after widening (0.0/1.0 are
    // exact in both formats — the widening seam adds no rounding).
    assert!(f32run.mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
}

fn assert_runs_bit_identical<T: lsopc_grid::Scalar>(
    name: &str,
    a: &IltResult<T>,
    b: &IltResult<T>,
) {
    assert_eq!(a.iterations, b.iterations, "{name}: iteration counts");
    for (i, (x, y)) in a.mask.as_slice().iter().zip(b.mask.as_slice()).enumerate() {
        assert!(x == y, "{name}: mask cell {i} differs: {x} vs {y}");
    }
    for (i, (x, y)) in a
        .levelset
        .as_slice()
        .iter()
        .zip(b.levelset.as_slice())
        .enumerate()
    {
        assert!(
            x.to_f64().to_bits() == y.to_f64().to_bits(),
            "{name}: ψ cell {i} differs bitwise: {x} vs {y}"
        );
    }
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(
            x.cost_total.to_bits(),
            y.cost_total.to_bits(),
            "{name}: iteration {} cost differs: {} vs {}",
            x.iteration,
            x.cost_total,
            y.cost_total
        );
        assert_eq!(x.time_step.to_bits(), y.time_step.to_bits());
        assert_eq!(x.cg_beta.to_bits(), y.cg_beta.to_bits());
    }
}

#[test]
fn f32_runs_are_bit_identical_across_thread_counts() {
    let baseline = run_f32(1);
    for threads in [2, 3, 8] {
        let run = run_f32(threads);
        assert_runs_bit_identical(&format!("f32 @{threads} threads"), &baseline, &run);
    }
}

#[test]
fn mixed_runs_are_bit_identical_across_thread_counts() {
    let baseline = run_mixed(ParallelContext::new(1));
    for threads in [2, 3, 8] {
        let run = run_mixed(ParallelContext::new(threads));
        assert_runs_bit_identical(&format!("mixed @{threads} threads"), &baseline, &run);
    }
}
