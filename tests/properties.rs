//! Property-based invariants across crates (proptest).

use lsopc::prelude::*;
use lsopc_fft::Fft2d;
use lsopc_geometry::{parse_glp, write_glp};
use lsopc_grid::C64;
use lsopc_levelset::{mask_from_levelset, signed_distance};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT inverse ∘ forward is the identity on random complex grids.
    #[test]
    fn fft2d_roundtrip(values in prop::collection::vec(-10.0f64..10.0, 32 * 32 * 2)) {
        let grid = Grid::from_fn(32, 32, |x, y| {
            let i = (y * 32 + x) * 2;
            C64::new(values[i], values[i + 1])
        });
        let fft = Fft2d::new(32, 32);
        let mut round = grid.clone();
        fft.forward(&mut round);
        fft.inverse(&mut round);
        let err = grid
            .as_slice()
            .iter()
            .zip(round.as_slice())
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max);
        prop_assert!(err < 1e-9);
    }

    /// Parseval: the FFT preserves energy up to the 1/N factor.
    #[test]
    fn fft2d_parseval(values in prop::collection::vec(-5.0f64..5.0, 16 * 16)) {
        let grid = Grid::from_fn(16, 16, |x, y| C64::new(values[y * 16 + x], 0.0));
        let time: f64 = grid.as_slice().iter().map(|v| v.norm_sqr()).sum();
        let mut f = grid;
        Fft2d::new(16, 16).forward(&mut f);
        let freq: f64 = f.as_slice().iter().map(|v| v.norm_sqr()).sum::<f64>() / 256.0;
        prop_assert!((time - freq).abs() < 1e-8 * (1.0 + time));
    }

    /// Signed distance: threshold recovers the exact input mask, and the
    /// magnitude is at least half a pixel everywhere.
    #[test]
    fn sdf_threshold_roundtrip(bits in prop::collection::vec(any::<bool>(), 24 * 24)) {
        let mask = Grid::from_fn(24, 24, |x, y| if bits[y * 24 + x] { 1.0_f64 } else { 0.0 });
        let psi = signed_distance(&mask);
        prop_assert_eq!(mask_from_levelset(&psi), mask);
        prop_assert!(psi.as_slice().iter().all(|&v| v.abs() >= 0.5 - 1e-9));
    }

    /// Rasterizing disjoint rectangles at 1 nm/px reproduces the exact
    /// total area, for arbitrary rectangle grids.
    #[test]
    fn raster_area_is_exact(
        xs in prop::collection::vec(0i64..56, 1..6),
        ws in prop::collection::vec(1i64..8, 1..6),
    ) {
        // Build disjoint rects on a 64-nm-wide strip: rect k occupies
        // columns [8k + x_k, 8k + x_k + w_k) with x_k + w_k <= 8.
        let mut layout = Layout::new();
        for (k, (&x, &w)) in xs.iter().zip(&ws).enumerate() {
            let x0 = 8 * k as i64 + (x % 8).min(8 - w.min(8));
            let w = w.min(8 - (x0 - 8 * k as i64));
            if w > 0 {
                layout.push(Rect::new(x0, 4, x0 + w, 24).into());
            }
        }
        let grid = rasterize(&layout, 64, 32, 1.0);
        prop_assert_eq!(grid.sum() as i64, layout.total_area());
    }

    /// `.glp` writing/parsing round-trips arbitrary rectangle layouts.
    #[test]
    fn glp_roundtrip(
        coords in prop::collection::vec((0i64..1000, 0i64..1000, 1i64..200, 1i64..200), 1..10)
    ) {
        let mut layout = Layout::new();
        layout.name = Some("prop".to_string());
        for &(x, y, w, h) in &coords {
            layout.push(Rect::from_origin_size(x, y, w, h).into());
        }
        let reparsed = parse_glp(&write_glp(&layout)).expect("roundtrip parses");
        prop_assert_eq!(layout, reparsed);
    }

    /// The aerial image is non-negative and bounded by a small multiple
    /// of the clear-field intensity for any binary mask.
    #[test]
    fn aerial_image_bounds(bits in prop::collection::vec(any::<bool>(), 16 * 16)) {
        let sim = LithoSimulator::from_optics(
            &OpticsConfig::iccad2013().with_kernel_count(4),
            64,
            4.0,
        ).expect("valid configuration");
        // Upsample the 16x16 random pattern to the 64x64 grid (4x blocks).
        let mask = Grid::from_fn(64, 64, |x, y| {
            if bits[(y / 4) * 16 + (x / 4)] { 1.0 } else { 0.0 }
        });
        let aerial = sim.aerial(&mask, ProcessCondition::NOMINAL);
        for (_, _, &v) in aerial.iter_coords() {
            prop_assert!(v >= -1e-9, "negative intensity {}", v);
            prop_assert!(v <= 2.5, "unphysical intensity {}", v);
        }
    }
}
