//! Cross-format integration: GDSII in, optimization, GDSII out.

use lsopc::prelude::*;
use lsopc_geometry::{
    mask_to_polygons, parse_gds, parse_glp, polygons_to_layout, write_gds, write_glp,
};
use lsopc_metrics::evaluate_mask;

fn design() -> Layout {
    let mut layout = Layout::new();
    layout.name = Some("FMT".to_string());
    layout.push(Rect::new(152, 96, 232, 416).into());
    layout.push(Rect::new(296, 96, 376, 416).into());
    layout
}

#[test]
fn gds_design_optimizes_and_exports() {
    // GDSII → layout.
    let bytes = write_gds(&design(), 1);
    let layout = parse_gds(&bytes).expect("gds parses");
    assert_eq!(layout.total_area(), design().total_area());

    // Optimize.
    let sim =
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(6), 128, 4.0)
            .expect("valid configuration")
            .with_accelerated_backend(1);
    let target = rasterize(&layout, 128, 128, 4.0);
    let result = LevelSetIlt::builder()
        .max_iterations(10)
        .build()
        .optimize(&sim, &target)
        .expect("optimization runs");

    // Mask → polygons → GDSII → back; geometry survives losslessly.
    let polygons = mask_to_polygons(&result.mask, 4.0);
    let mask_layout = polygons_to_layout(&polygons);
    let mask_bytes = write_gds(&mask_layout, 2);
    let mask_back = parse_gds(&mask_bytes).expect("mask gds parses");
    assert_eq!(mask_back.total_area(), mask_layout.total_area());
    let re_rasterized = rasterize(&mask_back, 128, 128, 4.0);
    assert_eq!(re_rasterized, result.mask);

    // The exported mask still beats the uncorrected design.
    let before = evaluate_mask(&sim, &target, &layout, &target);
    let after = evaluate_mask(&sim, &re_rasterized, &layout, &target);
    assert!(after.epe.violations <= before.epe.violations);
}

#[test]
fn glp_and_gds_carry_identical_geometry() {
    let layout = design();
    let via_glp = parse_glp(&write_glp(&layout)).expect("glp parses");
    let via_gds = parse_gds(&write_gds(&layout, 1)).expect("gds parses");
    let a = rasterize(&via_glp, 128, 128, 4.0);
    let b = rasterize(&via_gds, 128, 128, 4.0);
    assert_eq!(a, b);
}
